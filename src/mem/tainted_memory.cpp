#include "mem/tainted_memory.hpp"

#include <array>
#include <bit>

namespace ptaint::mem {
namespace {

constexpr uint32_t page_index(uint32_t addr) {
  return addr >> TaintedMemory::kPageShift;
}
constexpr uint32_t page_offset(uint32_t addr) {
  return addr & (TaintedMemory::kPageSize - 1);
}

bool get_bit(const std::array<uint8_t, TaintedMemory::kPageSize / 8>& bits,
             uint32_t i) {
  return (bits[i >> 3] >> (i & 7)) & 1;
}

void set_bit(std::array<uint8_t, TaintedMemory::kPageSize / 8>& bits,
             uint32_t i, bool v) {
  if (v) {
    bits[i >> 3] |= static_cast<uint8_t>(1u << (i & 7));
  } else {
    bits[i >> 3] &= static_cast<uint8_t>(~(1u << (i & 7)));
  }
}

}  // namespace

TaintedMemory::Page& TaintedMemory::page_for(uint32_t addr) {
  auto& slot = pages_[page_index(addr)];
  if (!slot) slot = std::make_unique<Page>();
  return *slot;
}

const TaintedMemory::Page* TaintedMemory::find_page(uint32_t addr) const {
  auto it = pages_.find(page_index(addr));
  return it == pages_.end() ? nullptr : it->second.get();
}

TaintedByte TaintedMemory::load_byte(uint32_t addr) const {
  const Page* p = find_page(addr);
  if (!p) return {};
  const uint32_t off = page_offset(addr);
  return {p->data[off], get_bit(p->taint, off)};
}

void TaintedMemory::store_byte(uint32_t addr, TaintedByte b) {
  Page& p = page_for(addr);
  const uint32_t off = page_offset(addr);
  p.data[off] = b.value;
  set_bit(p.taint, off, b.taint);
}

TaintedWord TaintedMemory::load_half(uint32_t addr) const {
  TaintedWord w;
  for (int i = 0; i < 2; ++i) {
    TaintedByte b = load_byte(addr + i);
    w.value |= static_cast<uint32_t>(b.value) << (8 * i);
    if (b.taint) w.taint |= static_cast<TaintBits>(1u << i);
  }
  return w;
}

void TaintedMemory::store_half(uint32_t addr, TaintedWord w) {
  for (int i = 0; i < 2; ++i) {
    store_byte(addr + i, {static_cast<uint8_t>(w.value >> (8 * i)),
                          byte_tainted(w.taint, i)});
  }
}

TaintedWord TaintedMemory::load_word(uint32_t addr) const {
  TaintedWord w;
  for (int i = 0; i < 4; ++i) {
    TaintedByte b = load_byte(addr + i);
    w.value |= static_cast<uint32_t>(b.value) << (8 * i);
    if (b.taint) w.taint |= static_cast<TaintBits>(1u << i);
  }
  return w;
}

void TaintedMemory::store_word(uint32_t addr, TaintedWord w) {
  for (int i = 0; i < 4; ++i) {
    store_byte(addr + i, {static_cast<uint8_t>(w.value >> (8 * i)),
                          byte_tainted(w.taint, i)});
  }
}

void TaintedMemory::write_block(uint32_t addr, std::span<const uint8_t> data,
                                bool tainted) {
  for (size_t i = 0; i < data.size(); ++i) {
    store_byte(addr + static_cast<uint32_t>(i), {data[i], tainted});
  }
}

std::vector<uint8_t> TaintedMemory::read_block(uint32_t addr,
                                               uint32_t len) const {
  std::vector<uint8_t> out(len);
  for (uint32_t i = 0; i < len; ++i) out[i] = load_byte(addr + i).value;
  return out;
}

std::string TaintedMemory::read_cstring(uint32_t addr, uint32_t max_len) const {
  std::string out;
  for (uint32_t i = 0; i < max_len; ++i) {
    uint8_t c = load_byte(addr + i).value;
    if (c == 0) break;
    out.push_back(static_cast<char>(c));
  }
  return out;
}

void TaintedMemory::set_taint(uint32_t addr, uint32_t len, bool tainted) {
  for (uint32_t i = 0; i < len; ++i) {
    Page& p = page_for(addr + i);
    set_bit(p.taint, page_offset(addr + i), tainted);
  }
}

bool TaintedMemory::any_tainted_in(uint32_t addr, uint32_t len) const {
  for (uint32_t i = 0; i < len; ++i) {
    const Page* p = find_page(addr + i);
    if (p && get_bit(p->taint, page_offset(addr + i))) return true;
  }
  return false;
}

uint64_t TaintedMemory::tainted_byte_count() const {
  uint64_t n = 0;
  for (const auto& [idx, page] : pages_) {
    for (uint8_t b : page->taint) n += std::popcount(b);
  }
  return n;
}

}  // namespace ptaint::mem
