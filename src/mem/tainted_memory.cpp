#include "mem/tainted_memory.hpp"

#include <algorithm>
#include <array>
#include <bit>

namespace ptaint::mem {
namespace {

constexpr uint32_t page_index(uint32_t addr) {
  return addr >> TaintedMemory::kPageShift;
}
constexpr uint32_t page_offset(uint32_t addr) {
  return addr & (TaintedMemory::kPageSize - 1);
}

bool get_bit(const std::array<uint8_t, TaintedMemory::kPageSize / 8>& bits,
             uint32_t i) {
  return (bits[i >> 3] >> (i & 7)) & 1;
}

void set_bit(std::array<uint8_t, TaintedMemory::kPageSize / 8>& bits,
             uint32_t i, bool v) {
  if (v) {
    bits[i >> 3] |= static_cast<uint8_t>(1u << (i & 7));
  } else {
    bits[i >> 3] &= static_cast<uint8_t>(~(1u << (i & 7)));
  }
}

}  // namespace

TaintedMemory& TaintedMemory::operator=(const TaintedMemory& other) {
  if (this != &other) {
    pages_.clear();
    pages_.reserve(other.pages_.size());
    for (const auto& [idx, page] : other.pages_) {
      pages_.emplace(idx, std::make_unique<Page>(*page));
    }
    // Page summaries deep-copy with the pages; only the rollups need
    // recomputing, from the per-page counts (no bitmap scan).
    tainted_total_ = 0;
    tainted_pages_ = 0;
    for (const auto& [idx, page] : pages_) {
      tainted_total_ += page->tainted_bytes;
      if (page->tainted_bytes > 0) ++tainted_pages_;
    }
    memo_index_ = kNoPage;
    memo_page_ = nullptr;
    qstats_ = {};
  }
  return *this;
}

TaintedMemory::Page& TaintedMemory::page_for(uint32_t addr) {
  const uint32_t idx = page_index(addr);
  if (idx == memo_index_) return *memo_page_;
  auto& slot = pages_[idx];
  if (!slot) slot = std::make_unique<Page>();
  memo_index_ = idx;
  memo_page_ = slot.get();
  return *slot;
}

const TaintedMemory::Page* TaintedMemory::find_page(uint32_t addr) const {
  const uint32_t idx = page_index(addr);
  if (idx == memo_index_) return memo_page_;
  auto it = pages_.find(idx);
  if (it == pages_.end()) return nullptr;
  memo_index_ = idx;
  memo_page_ = it->second.get();
  return it->second.get();
}

TaintedByte TaintedMemory::load_byte_slow(uint32_t addr) const {
  ++qstats_.loads;
  const Page* p = find_page(addr);
  if (!p) return {};
  if (p->tainted_bytes == 0) {
    ++qstats_.clean_page_loads;
    return {p->data[page_offset(addr)], false};
  }
  const uint32_t off = page_offset(addr);
  return {p->data[off], get_bit(p->taint, off)};
}

void TaintedMemory::store_byte_slow(uint32_t addr, TaintedByte b) {
  Page& p = page_for(addr);
  const uint32_t off = page_offset(addr);
  p.data[off] = b.value;
  if (!b.taint && p.tainted_bytes == 0) return;  // clean page stays clean
  store_byte_taint(p, off, b.taint);
}

void TaintedMemory::store_byte_taint(Page& p, uint32_t off, bool tainted) {
  const bool old = get_bit(p.taint, off);
  if (old != tainted) {
    set_bit(p.taint, off, tainted);
    adjust_taint(p, tainted ? 1 : -1);
  }
}

TaintedWord TaintedMemory::load_half(uint32_t addr) const {
  if ((addr & 1) == 0) {
    // Aligned halves sit inside one page and one taint byte.
    ++qstats_.loads;
    const Page* p = find_page(addr);
    if (!p) return {};
    const uint32_t off = page_offset(addr);
    const uint8_t* d = p->data.data() + off;
    TaintedWord w;
    w.value = static_cast<uint32_t>(d[0]) | (static_cast<uint32_t>(d[1]) << 8);
    if (p->tainted_bytes == 0) {
      ++qstats_.clean_page_loads;
      return w;
    }
    w.taint =
        static_cast<TaintBits>((p->taint[off >> 3] >> (off & 7)) & 0x3);
    return w;
  }
  TaintedWord w;
  for (int i = 0; i < 2; ++i) {
    TaintedByte b = load_byte(addr + i);
    w.value |= static_cast<uint32_t>(b.value) << (8 * i);
    if (b.taint) w.taint |= static_cast<TaintBits>(1u << i);
  }
  return w;
}

void TaintedMemory::store_half(uint32_t addr, TaintedWord w) {
  if ((addr & 1) == 0) {
    Page& p = page_for(addr);
    const uint32_t off = page_offset(addr);
    p.data[off] = static_cast<uint8_t>(w.value);
    p.data[off + 1] = static_cast<uint8_t>(w.value >> 8);
    const uint8_t fresh = static_cast<uint8_t>(w.taint & 0x3u);
    if (fresh == 0 && p.tainted_bytes == 0) return;  // clean-page fast path
    const int sh = off & 7;
    uint8_t& t = p.taint[off >> 3];
    const uint8_t old = static_cast<uint8_t>((t >> sh) & 0x3u);
    if (old != fresh) {
      t = static_cast<uint8_t>((t & ~(0x3u << sh)) | (fresh << sh));
      adjust_taint(p, std::popcount(fresh) - std::popcount(old));
    }
    return;
  }
  for (int i = 0; i < 2; ++i) {
    store_byte(addr + i, {static_cast<uint8_t>(w.value >> (8 * i)),
                          byte_tainted(w.taint, i)});
  }
}

TaintedWord TaintedMemory::load_word_slow(uint32_t addr) const {
  if ((addr & 3) == 0) {
    // Aligned words sit inside one page, and their 4 taint bits inside one
    // taint byte (offset is a multiple of 4) — one lookup for the whole
    // access.  This is the instruction-fetch and lw/sw fast path; on a
    // fully-untainted page the taint gather is skipped outright.
    ++qstats_.loads;
    const Page* p = find_page(addr);
    if (!p) return {};
    const uint32_t off = page_offset(addr);
    const uint8_t* d = p->data.data() + off;
    TaintedWord w;
    w.value = static_cast<uint32_t>(d[0]) |
              (static_cast<uint32_t>(d[1]) << 8) |
              (static_cast<uint32_t>(d[2]) << 16) |
              (static_cast<uint32_t>(d[3]) << 24);
    if (p->tainted_bytes == 0) {
      ++qstats_.clean_page_loads;
      return w;
    }
    w.taint =
        static_cast<TaintBits>((p->taint[off >> 3] >> (off & 7)) & 0xf);
    return w;
  }
  TaintedWord w;
  for (int i = 0; i < 4; ++i) {
    TaintedByte b = load_byte(addr + i);
    w.value |= static_cast<uint32_t>(b.value) << (8 * i);
    if (b.taint) w.taint |= static_cast<TaintBits>(1u << i);
  }
  return w;
}

void TaintedMemory::store_word_taint(Page& p, uint32_t off, uint8_t fresh) {
  const int sh = off & 7;
  uint8_t& t = p.taint[off >> 3];
  const uint8_t old = static_cast<uint8_t>((t >> sh) & 0xfu);
  if (old != fresh) {
    t = static_cast<uint8_t>((t & ~(0xfu << sh)) | (fresh << sh));
    adjust_taint(p, std::popcount(fresh) - std::popcount(old));
  }
}

void TaintedMemory::store_word_slow(uint32_t addr, TaintedWord w) {
  if ((addr & 3) == 0) {
    Page& p = page_for(addr);
    const uint32_t off = page_offset(addr);
    uint8_t* d = p.data.data() + off;
    d[0] = static_cast<uint8_t>(w.value);
    d[1] = static_cast<uint8_t>(w.value >> 8);
    d[2] = static_cast<uint8_t>(w.value >> 16);
    d[3] = static_cast<uint8_t>(w.value >> 24);
    const uint8_t fresh = static_cast<uint8_t>(w.taint & 0xfu);
    if (fresh == 0 && p.tainted_bytes == 0) return;  // clean-page fast path
    store_word_taint(p, off, fresh);
    return;
  }
  for (int i = 0; i < 4; ++i) {
    store_byte(addr + i, {static_cast<uint8_t>(w.value >> (8 * i)),
                          byte_tainted(w.taint, i)});
  }
}

void TaintedMemory::write_block(uint32_t addr, std::span<const uint8_t> data,
                                bool tainted) {
  size_t done = 0;
  while (done < data.size()) {
    Page& p = page_for(addr);
    const uint32_t off = page_offset(addr);
    const uint32_t chunk = std::min<uint32_t>(
        kPageSize - off, static_cast<uint32_t>(data.size() - done));
    std::copy_n(data.data() + done, chunk, p.data.data() + off);
    if (tainted || p.tainted_bytes != 0) {
      for (uint32_t i = 0; i < chunk; ++i) {
        const bool old = get_bit(p.taint, off + i);
        if (old != tainted) {
          set_bit(p.taint, off + i, tainted);
          adjust_taint(p, tainted ? 1 : -1);
        }
      }
    }
    done += chunk;
    addr += chunk;
  }
}

std::vector<uint8_t> TaintedMemory::read_block(uint32_t addr,
                                               uint32_t len) const {
  std::vector<uint8_t> out(len);
  for (uint32_t i = 0; i < len; ++i) out[i] = load_byte(addr + i).value;
  return out;
}

std::string TaintedMemory::read_cstring(uint32_t addr, uint32_t max_len) const {
  std::string out;
  for (uint32_t i = 0; i < max_len; ++i) {
    uint8_t c = load_byte(addr + i).value;
    if (c == 0) break;
    out.push_back(static_cast<char>(c));
  }
  return out;
}

void TaintedMemory::set_taint(uint32_t addr, uint32_t len, bool tainted) {
  uint32_t done = 0;
  while (done < len) {
    Page& p = page_for(addr);
    const uint32_t off = page_offset(addr);
    const uint32_t chunk = std::min<uint32_t>(kPageSize - off, len - done);
    if (tainted || p.tainted_bytes != 0) {
      for (uint32_t i = 0; i < chunk; ++i) {
        const bool old = get_bit(p.taint, off + i);
        if (old != tainted) {
          set_bit(p.taint, off + i, tainted);
          adjust_taint(p, tainted ? 1 : -1);
        }
      }
    }
    done += chunk;
    addr += chunk;
  }
}

bool TaintedMemory::any_tainted_in(uint32_t addr, uint32_t len) const {
  if (tainted_pages_ == 0 || len == 0) return false;
  // Walk page by page; the summary skips fully-untainted pages without
  // touching their bitmaps, so queries spanning page boundaries only scan
  // the dirty pages they overlap.
  uint32_t done = 0;
  while (done < len) {
    const uint32_t off = page_offset(addr);
    const uint32_t chunk = std::min<uint32_t>(kPageSize - off, len - done);
    const Page* p = find_page(addr);
    if (p && p->tainted_bytes != 0) {
      if (p->tainted_bytes == kPageSize) return true;  // saturated page
      for (uint32_t i = 0; i < chunk; ++i) {
        if (get_bit(p->taint, off + i)) return true;
      }
    }
    done += chunk;
    addr += chunk;
  }
  return false;
}

}  // namespace ptaint::mem
