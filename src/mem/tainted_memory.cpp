#include "mem/tainted_memory.hpp"

#include <algorithm>
#include <array>
#include <bit>

namespace ptaint::mem {
namespace {

constexpr uint32_t page_index(uint32_t addr) {
  return addr >> TaintedMemory::kPageShift;
}
constexpr uint32_t page_offset(uint32_t addr) {
  return addr & (TaintedMemory::kPageSize - 1);
}

bool get_bit(const std::array<uint8_t, TaintedMemory::kPageSize / 8>& bits,
             uint32_t i) {
  return (bits[i >> 3] >> (i & 7)) & 1;
}

void set_bit(std::array<uint8_t, TaintedMemory::kPageSize / 8>& bits,
             uint32_t i, bool v) {
  if (v) {
    bits[i >> 3] |= static_cast<uint8_t>(1u << (i & 7));
  } else {
    bits[i >> 3] &= static_cast<uint8_t>(~(1u << (i & 7)));
  }
}

}  // namespace

TaintedMemory& TaintedMemory::operator=(const TaintedMemory& other) {
  if (this != &other) {
    pages_.clear();
    pages_.reserve(other.pages_.size());
    for (const auto& [idx, page] : other.pages_) {
      pages_.emplace(idx, std::make_unique<Page>(*page));
    }
    memo_index_ = kNoPage;
    memo_page_ = nullptr;
  }
  return *this;
}

TaintedMemory::Page& TaintedMemory::page_for(uint32_t addr) {
  const uint32_t idx = page_index(addr);
  if (idx == memo_index_) return *memo_page_;
  auto& slot = pages_[idx];
  if (!slot) slot = std::make_unique<Page>();
  memo_index_ = idx;
  memo_page_ = slot.get();
  return *slot;
}

const TaintedMemory::Page* TaintedMemory::find_page(uint32_t addr) const {
  const uint32_t idx = page_index(addr);
  if (idx == memo_index_) return memo_page_;
  auto it = pages_.find(idx);
  if (it == pages_.end()) return nullptr;
  memo_index_ = idx;
  memo_page_ = it->second.get();
  return it->second.get();
}

TaintedByte TaintedMemory::load_byte(uint32_t addr) const {
  const Page* p = find_page(addr);
  if (!p) return {};
  const uint32_t off = page_offset(addr);
  return {p->data[off], get_bit(p->taint, off)};
}

void TaintedMemory::store_byte(uint32_t addr, TaintedByte b) {
  Page& p = page_for(addr);
  const uint32_t off = page_offset(addr);
  p.data[off] = b.value;
  set_bit(p.taint, off, b.taint);
}

TaintedWord TaintedMemory::load_half(uint32_t addr) const {
  if ((addr & 1) == 0) {
    // Aligned halves sit inside one page and one taint byte.
    const Page* p = find_page(addr);
    if (!p) return {};
    const uint32_t off = page_offset(addr);
    const uint8_t* d = p->data.data() + off;
    TaintedWord w;
    w.value = static_cast<uint32_t>(d[0]) | (static_cast<uint32_t>(d[1]) << 8);
    w.taint =
        static_cast<TaintBits>((p->taint[off >> 3] >> (off & 7)) & 0x3);
    return w;
  }
  TaintedWord w;
  for (int i = 0; i < 2; ++i) {
    TaintedByte b = load_byte(addr + i);
    w.value |= static_cast<uint32_t>(b.value) << (8 * i);
    if (b.taint) w.taint |= static_cast<TaintBits>(1u << i);
  }
  return w;
}

void TaintedMemory::store_half(uint32_t addr, TaintedWord w) {
  if ((addr & 1) == 0) {
    Page& p = page_for(addr);
    const uint32_t off = page_offset(addr);
    p.data[off] = static_cast<uint8_t>(w.value);
    p.data[off + 1] = static_cast<uint8_t>(w.value >> 8);
    const int sh = off & 7;
    uint8_t& t = p.taint[off >> 3];
    t = static_cast<uint8_t>((t & ~(0x3u << sh)) | ((w.taint & 0x3u) << sh));
    return;
  }
  for (int i = 0; i < 2; ++i) {
    store_byte(addr + i, {static_cast<uint8_t>(w.value >> (8 * i)),
                          byte_tainted(w.taint, i)});
  }
}

TaintedWord TaintedMemory::load_word(uint32_t addr) const {
  if ((addr & 3) == 0) {
    // Aligned words sit inside one page, and their 4 taint bits inside one
    // taint byte (offset is a multiple of 4) — one lookup for the whole
    // access.  This is the instruction-fetch and lw/sw fast path.
    const Page* p = find_page(addr);
    if (!p) return {};
    const uint32_t off = page_offset(addr);
    const uint8_t* d = p->data.data() + off;
    TaintedWord w;
    w.value = static_cast<uint32_t>(d[0]) |
              (static_cast<uint32_t>(d[1]) << 8) |
              (static_cast<uint32_t>(d[2]) << 16) |
              (static_cast<uint32_t>(d[3]) << 24);
    w.taint =
        static_cast<TaintBits>((p->taint[off >> 3] >> (off & 7)) & 0xf);
    return w;
  }
  TaintedWord w;
  for (int i = 0; i < 4; ++i) {
    TaintedByte b = load_byte(addr + i);
    w.value |= static_cast<uint32_t>(b.value) << (8 * i);
    if (b.taint) w.taint |= static_cast<TaintBits>(1u << i);
  }
  return w;
}

void TaintedMemory::store_word(uint32_t addr, TaintedWord w) {
  if ((addr & 3) == 0) {
    Page& p = page_for(addr);
    const uint32_t off = page_offset(addr);
    uint8_t* d = p.data.data() + off;
    d[0] = static_cast<uint8_t>(w.value);
    d[1] = static_cast<uint8_t>(w.value >> 8);
    d[2] = static_cast<uint8_t>(w.value >> 16);
    d[3] = static_cast<uint8_t>(w.value >> 24);
    const int sh = off & 7;
    uint8_t& t = p.taint[off >> 3];
    t = static_cast<uint8_t>((t & ~(0xfu << sh)) | ((w.taint & 0xfu) << sh));
    return;
  }
  for (int i = 0; i < 4; ++i) {
    store_byte(addr + i, {static_cast<uint8_t>(w.value >> (8 * i)),
                          byte_tainted(w.taint, i)});
  }
}

void TaintedMemory::write_block(uint32_t addr, std::span<const uint8_t> data,
                                bool tainted) {
  size_t done = 0;
  while (done < data.size()) {
    Page& p = page_for(addr);
    const uint32_t off = page_offset(addr);
    const uint32_t chunk = std::min<uint32_t>(
        kPageSize - off, static_cast<uint32_t>(data.size() - done));
    std::copy_n(data.data() + done, chunk, p.data.data() + off);
    for (uint32_t i = 0; i < chunk; ++i) set_bit(p.taint, off + i, tainted);
    done += chunk;
    addr += chunk;
  }
}

std::vector<uint8_t> TaintedMemory::read_block(uint32_t addr,
                                               uint32_t len) const {
  std::vector<uint8_t> out(len);
  for (uint32_t i = 0; i < len; ++i) out[i] = load_byte(addr + i).value;
  return out;
}

std::string TaintedMemory::read_cstring(uint32_t addr, uint32_t max_len) const {
  std::string out;
  for (uint32_t i = 0; i < max_len; ++i) {
    uint8_t c = load_byte(addr + i).value;
    if (c == 0) break;
    out.push_back(static_cast<char>(c));
  }
  return out;
}

void TaintedMemory::set_taint(uint32_t addr, uint32_t len, bool tainted) {
  uint32_t done = 0;
  while (done < len) {
    Page& p = page_for(addr);
    const uint32_t off = page_offset(addr);
    const uint32_t chunk = std::min<uint32_t>(kPageSize - off, len - done);
    for (uint32_t i = 0; i < chunk; ++i) set_bit(p.taint, off + i, tainted);
    done += chunk;
    addr += chunk;
  }
}

bool TaintedMemory::any_tainted_in(uint32_t addr, uint32_t len) const {
  for (uint32_t i = 0; i < len; ++i) {
    const Page* p = find_page(addr + i);
    if (p && get_bit(p->taint, page_offset(addr + i))) return true;
  }
  return false;
}

uint64_t TaintedMemory::tainted_byte_count() const {
  uint64_t n = 0;
  for (const auto& [idx, page] : pages_) {
    for (uint8_t b : page->taint) n += std::popcount(b);
  }
  return n;
}

}  // namespace ptaint::mem
