#include "mem/tainted_memory.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>

namespace ptaint::mem {
namespace {

constexpr uint32_t page_offset(uint32_t addr) {
  return addr & (TaintedMemory::kPageSize - 1);
}

bool get_bit(const std::array<uint8_t, TaintedMemory::kPageSize / 8>& bits,
             uint32_t i) {
  return (bits[i >> 3] >> (i & 7)) & 1;
}

void set_bit(std::array<uint8_t, TaintedMemory::kPageSize / 8>& bits,
             uint32_t i, bool v) {
  if (v) {
    bits[i >> 3] |= static_cast<uint8_t>(1u << (i & 7));
  } else {
    bits[i >> 3] &= static_cast<uint8_t>(~(1u << (i & 7)));
  }
}

uint8_t get_aprov(const std::array<uint8_t, TaintedMemory::kPageSize / 2>& a,
                  uint32_t i) {
  return static_cast<uint8_t>((a[i >> 1] >> ((i & 1) * 4)) & kByteAddrMask);
}

uint64_t next_memory_id() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

TaintedMemory::TaintedMemory() : id_(next_memory_id()) {}

void TaintedMemory::share_from(const TaintedMemory& other) {
  pages_ = other.pages_;  // every page shared, copy-on-write from here on
  tainted_total_ = other.tainted_total_;
  addr_total_ = other.addr_total_;
  tainted_pages_ = other.tainted_pages_;
  base_id_ = other.id_;
  tracking_ = true;
  dirty_.clear();
  memo_index_ = kNoPage;
  memo_page_ = nullptr;
  wmemo_index_ = kNoPage;
  wmemo_page_ = nullptr;
  qstats_ = {};
  ++cstats_.shares;
  // The source's pages are shared now, so its write memo (which promises
  // exclusive ownership) must go.  Conditional so that copying *from* an
  // immutable snapshot — the concurrent campaign case — never writes to it.
  if (other.wmemo_index_ != kNoPage) {
    other.wmemo_index_ = kNoPage;
    other.wmemo_page_ = nullptr;
  }
}

void TaintedMemory::deep_copy_from(const TaintedMemory& other) {
  if (this == &other) return;
  pages_.clear();
  pages_.reserve(other.pages_.size());
  for (const auto& [idx, page] : other.pages_) {
    pages_.emplace(idx, std::make_shared<Page>(*page));
  }
  // Page summaries deep-copy with the pages; the rollups transfer directly.
  tainted_total_ = other.tainted_total_;
  addr_total_ = other.addr_total_;
  tainted_pages_ = other.tainted_pages_;
  base_id_ = 0;
  tracking_ = false;
  dirty_.clear();
  memo_index_ = kNoPage;
  memo_page_ = nullptr;
  wmemo_index_ = kNoPage;
  wmemo_page_ = nullptr;
  qstats_ = {};
  ++cstats_.deep_copies;
}

std::optional<std::vector<uint32_t>> TaintedMemory::delta_restore(
    const TaintedMemory& base) {
  if (!tracking_ || base_id_ != base.id_ || this == &base) {
    return std::nullopt;
  }
  std::vector<uint32_t> restored(dirty_.begin(), dirty_.end());
  std::sort(restored.begin(), restored.end());
  for (uint32_t idx : restored) {
    const auto it = base.pages_.find(idx);
    if (it == base.pages_.end()) {
      pages_.erase(idx);  // page created after the copy: unmap it again
    } else {
      pages_[idx] = it->second;  // diverged page: drop back to the shared block
    }
  }
  dirty_.clear();
  // Clean pages still share the base's blocks and the dirty ones were just
  // reverted, so the rollups are the base's rollups — no scan needed.
  tainted_total_ = base.tainted_total_;
  addr_total_ = base.addr_total_;
  tainted_pages_ = base.tainted_pages_;
  memo_index_ = kNoPage;
  memo_page_ = nullptr;
  wmemo_index_ = kNoPage;
  wmemo_page_ = nullptr;
  qstats_ = {};
  ++cstats_.delta_restores;
  cstats_.pages_delta_restored += restored.size();
  // Same conditional write-memo invalidation as share_from (no-op for the
  // shared-snapshot case, where the base never had a write memo).
  if (base.wmemo_index_ != kNoPage) {
    base.wmemo_index_ = kNoPage;
    base.wmemo_page_ = nullptr;
  }
  return restored;
}

void TaintedMemory::forget_base() {
  tracking_ = false;
  base_id_ = 0;
  dirty_.clear();
}

std::vector<std::pair<uint32_t, std::shared_ptr<TaintedMemory::Page>>>
TaintedMemory::page_blocks() const {
  std::vector<std::pair<uint32_t, std::shared_ptr<Page>>> out;
  out.reserve(pages_.size());
  for (const auto& [idx, page] : pages_) out.emplace_back(idx, page);
  return out;
}

void TaintedMemory::replace_page_block(uint32_t idx,
                                       std::shared_ptr<Page> block) {
  auto it = pages_.find(idx);
  if (it == pages_.end()) return;
  it->second = std::move(block);
  // The old block may be what the memos point at.
  memo_index_ = kNoPage;
  memo_page_ = nullptr;
  wmemo_index_ = kNoPage;
  wmemo_page_ = nullptr;
}

void TaintedMemory::adopt_page_blocks(
    std::vector<std::pair<uint32_t, std::shared_ptr<Page>>> blocks) {
  pages_.clear();
  pages_.reserve(blocks.size());
  tainted_total_ = 0;
  addr_total_ = 0;
  tainted_pages_ = 0;
  for (auto& [idx, page] : blocks) {
    tainted_total_ += page->tainted_bytes;
    addr_total_ += page->addr_bytes;
    if (page->tainted_bytes > 0) ++tainted_pages_;
    pages_[idx] = std::move(page);
  }
  base_id_ = 0;
  tracking_ = false;
  dirty_.clear();
  memo_index_ = kNoPage;
  memo_page_ = nullptr;
  wmemo_index_ = kNoPage;
  wmemo_page_ = nullptr;
  qstats_ = {};
}

size_t TaintedMemory::shared_page_count() const {
  size_t n = 0;
  for (const auto& [idx, page] : pages_) {
    if (page.use_count() > 1) ++n;
  }
  return n;
}

TaintedMemory::Page& TaintedMemory::page_for_slow(uint32_t idx) {
  auto& slot = pages_[idx];
  if (!slot) {
    slot = std::make_shared<Page>();
  } else if (slot.use_count() > 1) {
    // Copy-on-write break: we hold one of several references, but other
    // holders can only *release* theirs (a snapshot's refs are immutable
    // and machine copies happen on their own threads), so the use_count
    // test is a stable exclusivity check for the owning thread.
    slot = std::make_shared<Page>(*slot);
    ++cstats_.cow_breaks;
  }
  if (tracking_) dirty_.insert(idx);
  // Both memos move to the (now exclusively-owned) page: the read memo must
  // never keep serving a superseded shared block.
  wmemo_index_ = idx;
  wmemo_page_ = slot.get();
  memo_index_ = idx;
  memo_page_ = slot.get();
  return *slot;
}

TaintedByte TaintedMemory::load_byte_slow(uint32_t addr) const {
  ++qstats_.loads;
  const Page* p = find_page(addr);
  if (!p) return {};
  const uint32_t off = page_offset(addr);
  if ((p->tainted_bytes | p->addr_bytes) == 0) {
    ++qstats_.clean_page_loads;
    return {p->data[off], uint8_t{0}};
  }
  return {p->data[off], gather_planes1(*p, off)};
}

void TaintedMemory::store_byte_slow(uint32_t addr, TaintedByte b) {
  Page& p = page_for(addr);
  const uint32_t off = page_offset(addr);
  p.data[off] = b.value;
  if (b.planes == 0 && (p.tainted_bytes | p.addr_bytes) == 0) {
    return;  // clean page stays clean
  }
  store_byte_taint(p, off, b.planes);
}

void TaintedMemory::store_byte_aprov(Page& p, uint32_t off, uint8_t nib) {
  const uint8_t old = get_aprov(p.aprov, off);
  if (old == nib) return;
  const int sh = (off & 1) * 4;
  uint8_t& slot = p.aprov[off >> 1];
  slot = static_cast<uint8_t>((slot & ~(0xfu << sh)) | (nib << sh));
  const int32_t delta = (nib != 0) - (old != 0);
  p.addr_bytes = static_cast<uint32_t>(
      static_cast<int64_t>(p.addr_bytes) + delta);
  addr_total_ =
      static_cast<uint64_t>(static_cast<int64_t>(addr_total_) + delta);
}

void TaintedMemory::store_byte_taint(Page& p, uint32_t off, uint8_t planes) {
  const bool tainted = (planes & kByteData) != 0;
  const bool old = get_bit(p.taint, off);
  if (old != tainted) {
    set_bit(p.taint, off, tainted);
    adjust_taint(p, tainted ? 1 : -1);
  }
  const uint8_t nib = static_cast<uint8_t>(planes & kByteAddrMask);
  if (nib != 0 || p.addr_bytes != 0) store_byte_aprov(p, off, nib);
}

TaintedWord TaintedMemory::load_half(uint32_t addr) const {
  if ((addr & 1) == 0) {
    // Aligned halves sit inside one page and one taint byte.
    ++qstats_.loads;
    const Page* p = find_page(addr);
    if (!p) return {};
    const uint32_t off = page_offset(addr);
    const uint8_t* d = p->data.data() + off;
    TaintedWord w;
    w.value = static_cast<uint32_t>(d[0]) | (static_cast<uint32_t>(d[1]) << 8);
    if ((p->tainted_bytes | p->addr_bytes) == 0) {
      ++qstats_.clean_page_loads;
      return w;
    }
    if (p->tainted_bytes != 0) {
      w.taint =
          static_cast<TaintBits>((p->taint[off >> 3] >> (off & 7)) & 0x3);
    }
    if (p->addr_bytes != 0) {
      w.taint |= planes_to_word(get_aprov(p->aprov, off), 0);
      w.taint |= planes_to_word(get_aprov(p->aprov, off + 1), 1);
    }
    return w;
  }
  TaintedWord w;
  for (int i = 0; i < 2; ++i) {
    TaintedByte b = load_byte(addr + i);
    w.value |= static_cast<uint32_t>(b.value) << (8 * i);
    w.taint |= planes_to_word(b.planes, i);
  }
  return w;
}

void TaintedMemory::store_half(uint32_t addr, TaintedWord w) {
  if ((addr & 1) == 0) {
    Page& p = page_for(addr);
    const uint32_t off = page_offset(addr);
    p.data[off] = static_cast<uint8_t>(w.value);
    p.data[off + 1] = static_cast<uint8_t>(w.value >> 8);
    if (w.taint == 0 && (p.tainted_bytes | p.addr_bytes) == 0) {
      return;  // clean-page fast path
    }
    const uint8_t fresh = static_cast<uint8_t>(w.taint & 0x3u);
    const int sh = off & 7;
    uint8_t& t = p.taint[off >> 3];
    const uint8_t old = static_cast<uint8_t>((t >> sh) & 0x3u);
    if (old != fresh) {
      t = static_cast<uint8_t>((t & ~(0x3u << sh)) | (fresh << sh));
      adjust_taint(p, std::popcount(fresh) - std::popcount(old));
    }
    if (addr_tainted(w.taint) || p.addr_bytes != 0) {
      store_byte_aprov(p, off,
                       static_cast<uint8_t>(byte_planes(w.taint, 0) &
                                            kByteAddrMask));
      store_byte_aprov(p, off + 1,
                       static_cast<uint8_t>(byte_planes(w.taint, 1) &
                                            kByteAddrMask));
    }
    return;
  }
  for (int i = 0; i < 2; ++i) {
    store_byte(addr + i, {static_cast<uint8_t>(w.value >> (8 * i)),
                          byte_planes(w.taint, i)});
  }
}

TaintedWord TaintedMemory::load_word_slow(uint32_t addr) const {
  if ((addr & 3) == 0) {
    // Aligned words sit inside one page, and their 4 taint bits inside one
    // taint byte (offset is a multiple of 4) — one lookup for the whole
    // access.  This is the instruction-fetch and lw/sw fast path; on a
    // fully-untainted page the taint gather is skipped outright.
    ++qstats_.loads;
    const Page* p = find_page(addr);
    if (!p) return {};
    const uint32_t off = page_offset(addr);
    const uint8_t* d = p->data.data() + off;
    TaintedWord w;
    w.value = static_cast<uint32_t>(d[0]) |
              (static_cast<uint32_t>(d[1]) << 8) |
              (static_cast<uint32_t>(d[2]) << 16) |
              (static_cast<uint32_t>(d[3]) << 24);
    if ((p->tainted_bytes | p->addr_bytes) == 0) {
      ++qstats_.clean_page_loads;
      return w;
    }
    w.taint = gather_taint4(*p, off);
    return w;
  }
  TaintedWord w;
  for (int i = 0; i < 4; ++i) {
    TaintedByte b = load_byte(addr + i);
    w.value |= static_cast<uint32_t>(b.value) << (8 * i);
    w.taint |= planes_to_word(b.planes, i);
  }
  return w;
}

void TaintedMemory::store_word_taint(Page& p, uint32_t off, TaintBits fresh) {
  const uint8_t fresh_data = static_cast<uint8_t>(fresh & 0xfu);
  const int sh = off & 7;
  uint8_t& t = p.taint[off >> 3];
  const uint8_t old = static_cast<uint8_t>((t >> sh) & 0xfu);
  if (old != fresh_data) {
    t = static_cast<uint8_t>((t & ~(0xfu << sh)) | (fresh_data << sh));
    adjust_taint(p, std::popcount(fresh_data) - std::popcount(old));
  }
  if (addr_tainted(fresh) || p.addr_bytes != 0) {
    for (int i = 0; i < 4; ++i) {
      store_byte_aprov(
          p, off + static_cast<uint32_t>(i),
          static_cast<uint8_t>(byte_planes(fresh, i) & kByteAddrMask));
    }
  }
}

void TaintedMemory::store_word_slow(uint32_t addr, TaintedWord w) {
  if ((addr & 3) == 0) {
    Page& p = page_for(addr);
    const uint32_t off = page_offset(addr);
    uint8_t* d = p.data.data() + off;
    d[0] = static_cast<uint8_t>(w.value);
    d[1] = static_cast<uint8_t>(w.value >> 8);
    d[2] = static_cast<uint8_t>(w.value >> 16);
    d[3] = static_cast<uint8_t>(w.value >> 24);
    if (w.taint == 0 && (p.tainted_bytes | p.addr_bytes) == 0) {
      return;  // clean-page fast path
    }
    store_word_taint(p, off, w.taint);
    return;
  }
  for (int i = 0; i < 4; ++i) {
    store_byte(addr + i, {static_cast<uint8_t>(w.value >> (8 * i)),
                          byte_planes(w.taint, i)});
  }
}

void TaintedMemory::write_block(uint32_t addr, std::span<const uint8_t> data,
                                bool tainted) {
  size_t done = 0;
  while (done < data.size()) {
    Page& p = page_for(addr);
    const uint32_t off = page_offset(addr);
    const uint32_t chunk = std::min<uint32_t>(
        kPageSize - off, static_cast<uint32_t>(data.size() - done));
    std::copy_n(data.data() + done, chunk, p.data.data() + off);
    if (tainted || p.tainted_bytes != 0) {
      for (uint32_t i = 0; i < chunk; ++i) {
        const bool old = get_bit(p.taint, off + i);
        if (old != tainted) {
          set_bit(p.taint, off + i, tainted);
          adjust_taint(p, tainted ? 1 : -1);
        }
      }
    }
    if (p.addr_bytes != 0) {
      // Overwritten bytes hold fresh kernel data: no address provenance.
      for (uint32_t i = 0; i < chunk; ++i) store_byte_aprov(p, off + i, 0);
    }
    done += chunk;
    addr += chunk;
  }
}

std::vector<uint8_t> TaintedMemory::read_block(uint32_t addr,
                                               uint32_t len) const {
  std::vector<uint8_t> out(len);
  for (uint32_t i = 0; i < len; ++i) out[i] = load_byte(addr + i).value;
  return out;
}

std::string TaintedMemory::read_cstring(uint32_t addr, uint32_t max_len) const {
  std::string out;
  for (uint32_t i = 0; i < max_len; ++i) {
    uint8_t c = load_byte(addr + i).value;
    if (c == 0) break;
    out.push_back(static_cast<char>(c));
  }
  return out;
}

void TaintedMemory::set_taint(uint32_t addr, uint32_t len, bool tainted) {
  uint32_t done = 0;
  while (done < len) {
    Page& p = page_for(addr);
    const uint32_t off = page_offset(addr);
    const uint32_t chunk = std::min<uint32_t>(kPageSize - off, len - done);
    if (tainted || p.tainted_bytes != 0) {
      for (uint32_t i = 0; i < chunk; ++i) {
        const bool old = get_bit(p.taint, off + i);
        if (old != tainted) {
          set_bit(p.taint, off + i, tainted);
          adjust_taint(p, tainted ? 1 : -1);
        }
      }
    }
    done += chunk;
    addr += chunk;
  }
}

void TaintedMemory::set_addr_taint(uint32_t addr, uint32_t len,
                                   uint8_t planes) {
  const uint8_t nib = static_cast<uint8_t>(planes & kByteAddrMask);
  uint32_t done = 0;
  while (done < len) {
    Page& p = page_for(addr);
    const uint32_t off = page_offset(addr);
    const uint32_t chunk = std::min<uint32_t>(kPageSize - off, len - done);
    if (nib != 0 || p.addr_bytes != 0) {
      for (uint32_t i = 0; i < chunk; ++i) store_byte_aprov(p, off + i, nib);
    }
    done += chunk;
    addr += chunk;
  }
}

bool TaintedMemory::any_tainted_in(uint32_t addr, uint32_t len) const {
  if (tainted_pages_ == 0 || len == 0) return false;
  // Walk page by page; the summary skips fully-untainted pages without
  // touching their bitmaps, so queries spanning page boundaries only scan
  // the dirty pages they overlap.
  uint32_t done = 0;
  while (done < len) {
    const uint32_t off = page_offset(addr);
    const uint32_t chunk = std::min<uint32_t>(kPageSize - off, len - done);
    const Page* p = find_page(addr);
    if (p && p->tainted_bytes != 0) {
      if (p->tainted_bytes == kPageSize) return true;  // saturated page
      for (uint32_t i = 0; i < chunk; ++i) {
        if (get_bit(p->taint, off + i)) return true;
      }
    }
    done += chunk;
    addr += chunk;
  }
  return false;
}

uint8_t TaintedMemory::addr_planes_in(uint32_t addr, uint32_t len) const {
  if (addr_total_ == 0 || len == 0) return 0;
  uint8_t planes = 0;
  uint32_t done = 0;
  while (done < len) {
    const uint32_t off = page_offset(addr);
    const uint32_t chunk = std::min<uint32_t>(kPageSize - off, len - done);
    const Page* p = find_page(addr);
    if (p && p->addr_bytes != 0) {
      for (uint32_t i = 0; i < chunk; ++i) {
        planes |= get_aprov(p->aprov, off + i);
      }
      if (planes == kByteAddrMask) return planes;  // saturated
    }
    done += chunk;
    addr += chunk;
  }
  return planes;
}

std::optional<uint32_t> TaintedMemory::first_addr_tainted(uint32_t addr,
                                                          uint32_t len) const {
  if (addr_total_ == 0 || len == 0) return std::nullopt;
  uint32_t done = 0;
  while (done < len) {
    const uint32_t off = page_offset(addr);
    const uint32_t chunk = std::min<uint32_t>(kPageSize - off, len - done);
    const Page* p = find_page(addr);
    if (p && p->addr_bytes != 0) {
      for (uint32_t i = 0; i < chunk; ++i) {
        if (get_aprov(p->aprov, off + i) != 0) return addr + i;
      }
    }
    done += chunk;
    addr += chunk;
  }
  return std::nullopt;
}

TaintedMemory::JitLayout TaintedMemory::jit_layout() const {
  // The emitted clean-page test reads tainted_bytes and addr_bytes as one
  // aligned qword; pin the layout facts it depends on.
  static_assert(offsetof(Page, data) == 0);
  static_assert(offsetof(Page, tainted_bytes) % 8 == 0);
  static_assert(offsetof(Page, addr_bytes) ==
                offsetof(Page, tainted_bytes) + 4);
  // TaintedMemory itself is not standard-layout (hash maps), so the memo
  // offsets are measured from a live object instead of offsetof.
  const char* base = reinterpret_cast<const char*>(this);
  JitLayout l;
  l.memo_index =
      static_cast<uint32_t>(reinterpret_cast<const char*>(&memo_index_) - base);
  l.memo_page =
      static_cast<uint32_t>(reinterpret_cast<const char*>(&memo_page_) - base);
  l.wmemo_index = static_cast<uint32_t>(
      reinterpret_cast<const char*>(&wmemo_index_) - base);
  l.wmemo_page =
      static_cast<uint32_t>(reinterpret_cast<const char*>(&wmemo_page_) - base);
  l.page_data = offsetof(Page, data);
  l.page_summary = offsetof(Page, tainted_bytes);
  return l;
}

}  // namespace ptaint::mem
