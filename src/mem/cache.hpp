// Set-associative cache model extended with taintedness storage.
//
// The paper (Section 4.1) extends L1/L2 caches so taint bits travel with the
// cache lines.  Functionally the simulator reads through TaintedMemory; this
// model supplies the *timing* and *area* side of the study: hit/miss
// accounting for the pipeline cycle model, and the extra SRAM bits the taint
// extension costs (1 taint bit per data byte = 12.5% of the data array).
#pragma once

#include <cstdint>
#include <vector>

namespace ptaint::mem {

struct CacheConfig {
  uint32_t size_bytes = 32 * 1024;
  uint32_t line_bytes = 32;
  uint32_t ways = 4;
  uint32_t hit_latency = 1;    // cycles
  uint32_t miss_penalty = 10;  // cycles charged on miss (next level / memory)
  bool taint_extension = true; // whether the line stores taint bits
};

struct CacheStats {
  uint64_t accesses = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;

  double miss_rate() const {
    return accesses == 0 ? 0.0 : static_cast<double>(misses) / accesses;
  }
};

class Cache {
 public:
  explicit Cache(CacheConfig config);

  /// Simulates one access; returns the latency in cycles.
  uint32_t access(uint32_t addr, bool is_write);

  const CacheStats& stats() const { return stats_; }
  const CacheConfig& config() const { return config_; }

  /// Bits of storage in the data array, excluding tags.
  uint64_t data_bits() const;
  /// Extra bits added by the taint extension (0 when disabled).
  uint64_t taint_bits() const;

  void reset_stats() { stats_ = {}; }

 private:
  struct Line {
    uint32_t tag = 0;
    bool valid = false;
    uint64_t lru = 0;  // last-use tick
  };

  CacheConfig config_;
  uint32_t num_sets_;
  std::vector<Line> lines_;  // sets * ways, row-major by set
  CacheStats stats_;
  uint64_t tick_ = 0;
};

}  // namespace ptaint::mem
