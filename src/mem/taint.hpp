// Core taintedness value types.
//
// The paper's extended memory model (Section 4.1) associates one taintedness
// bit with every byte of storage — memory, caches and registers alike.  A
// 32-bit datum therefore carries a 4-bit taint vector; bit i covers byte i,
// with byte 0 the least-significant byte.
//
// On top of the paper's data-taint direction this model tracks *address
// taintedness* (the DrTaint-style inverse direction): three extra per-byte
// planes record whether a byte may hold part of a stack, heap or text
// address.  A word's TaintBits is therefore four 4-bit planes:
//
//   bits  0..3   data taint  (the paper's direction; byte i = bit i)
//   bits  4..7   stack-address provenance
//   bits  8..11  heap-address provenance
//   bits 12..15  text-address provenance
//
// All behavioural gates of the original detector (`tainted()`,
// `any_tainted`) test the data plane only, so adding the address planes
// changes no pointer-taintedness verdict; the address planes feed the
// leak detector at SYS_WRITE/SYS_SEND sites.
#pragma once

#include <cstdint>

namespace ptaint::mem {

/// Taint vector for a 32-bit word: four per-byte planes (see file comment).
using TaintBits = uint16_t;

inline constexpr TaintBits kUntainted = 0x0;
/// All data bytes tainted (data plane only — the paper's full-word taint).
inline constexpr TaintBits kAllTainted = 0xf;

/// Plane masks.
inline constexpr TaintBits kDataMask = 0x000f;
inline constexpr TaintBits kStackAddrMask = 0x00f0;
inline constexpr TaintBits kHeapAddrMask = 0x0f00;
inline constexpr TaintBits kTextAddrMask = 0xf000;
inline constexpr TaintBits kAddrMask = 0xfff0;
inline constexpr TaintBits kAllPlanes = 0xffff;

/// Per-byte plane nibble (bit 0 data, bit 1 stack, bit 2 heap, bit 3 text)
/// — the form a single byte's taint takes in memory and TaintedByte.
inline constexpr uint8_t kByteData = 0x1;
inline constexpr uint8_t kByteStackAddr = 0x2;
inline constexpr uint8_t kByteHeapAddr = 0x4;
inline constexpr uint8_t kByteTextAddr = 0x8;
inline constexpr uint8_t kByteAddrMask = 0xe;

/// True when any byte of the word is data-tainted.  This is the OR-gate the
/// pipeline detectors feed (Section 4.3); address planes do not trip it.
constexpr bool any_tainted(TaintBits t) { return (t & kDataMask) != 0; }

/// True when any byte carries address provenance (any address plane).
constexpr bool addr_tainted(TaintBits t) { return (t & kAddrMask) != 0; }

/// Data taint of byte `i` (0 = LSB).
constexpr bool byte_tainted(TaintBits t, int i) { return ((t >> i) & 1) != 0; }

/// The plane nibble of byte `i`: gathers bit i of each plane.
constexpr uint8_t byte_planes(TaintBits t, int i) {
  return static_cast<uint8_t>(((t >> i) & 1) | (((t >> (4 + i)) & 1) << 1) |
                              (((t >> (8 + i)) & 1) << 2) |
                              (((t >> (12 + i)) & 1) << 3));
}

/// Scatters a plane nibble back into word position `i`.
constexpr TaintBits planes_to_word(uint8_t nib, int i) {
  return static_cast<TaintBits>(((nib & 1) << i) | (((nib >> 1) & 1) << (4 + i)) |
                                (((nib >> 2) & 1) << (8 + i)) |
                                (((nib >> 3) & 1) << (12 + i)));
}

/// Widens each non-empty plane to cover all four bytes — the taint shape of
/// a sign-extended load, where every result byte derives from the source.
constexpr TaintBits widen_planes(TaintBits t) {
  TaintBits r = 0;
  if (t & kDataMask) r |= kDataMask;
  if (t & kStackAddrMask) r |= kStackAddrMask;
  if (t & kHeapAddrMask) r |= kHeapAddrMask;
  if (t & kTextAddrMask) r |= kTextAddrMask;
  return r;
}

/// A 32-bit value together with its per-byte taint vector.  This is the unit
/// that flows through the register file, the ALU taint-tracking logic and the
/// load/store paths.
struct TaintedWord {
  uint32_t value = 0;
  TaintBits taint = kUntainted;

  constexpr TaintedWord() = default;
  constexpr TaintedWord(uint32_t v, TaintBits t = kUntainted)
      : value(v), taint(t) {}

  constexpr bool tainted() const { return any_tainted(taint); }
  bool operator==(const TaintedWord&) const = default;
};

/// A single byte with its plane nibble (bit 0 data, bits 1..3 address), as
/// stored in memory and caches.
struct TaintedByte {
  uint8_t value = 0;
  uint8_t planes = 0;

  constexpr TaintedByte() = default;
  constexpr TaintedByte(uint8_t v, uint8_t p) : value(v), planes(p) {}
  constexpr TaintedByte(uint8_t v, bool data_tainted)
      : value(v), planes(data_tainted ? kByteData : 0) {}

  constexpr bool tainted() const { return (planes & kByteData) != 0; }
  bool operator==(const TaintedByte&) const = default;
};

}  // namespace ptaint::mem
