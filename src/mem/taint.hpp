// Core taintedness value types.
//
// The paper's extended memory model (Section 4.1) associates one taintedness
// bit with every byte of storage — memory, caches and registers alike.  A
// 32-bit datum therefore carries a 4-bit taint vector; bit i covers byte i,
// with byte 0 the least-significant byte.
#pragma once

#include <cstdint>

namespace ptaint::mem {

/// Taint vector for a 32-bit word: bits 0..3 cover bytes 0..3 (LSB first).
using TaintBits = uint8_t;

inline constexpr TaintBits kUntainted = 0x0;
inline constexpr TaintBits kAllTainted = 0xf;

/// True when any byte of the word is tainted.  This is the OR-gate the
/// pipeline detectors feed (Section 4.3).
constexpr bool any_tainted(TaintBits t) { return (t & kAllTainted) != 0; }

/// Taint of byte `i` (0 = LSB).
constexpr bool byte_tainted(TaintBits t, int i) { return ((t >> i) & 1) != 0; }

/// A 32-bit value together with its per-byte taint vector.  This is the unit
/// that flows through the register file, the ALU taint-tracking logic and the
/// load/store paths.
struct TaintedWord {
  uint32_t value = 0;
  TaintBits taint = kUntainted;

  constexpr TaintedWord() = default;
  constexpr TaintedWord(uint32_t v, TaintBits t = kUntainted)
      : value(v), taint(t & kAllTainted) {}

  constexpr bool tainted() const { return any_tainted(taint); }
  bool operator==(const TaintedWord&) const = default;
};

/// A single byte with its taint bit, as stored in memory and caches.
struct TaintedByte {
  uint8_t value = 0;
  bool taint = false;

  bool operator==(const TaintedByte&) const = default;
};

}  // namespace ptaint::mem
