// Sparse byte-addressable memory extended with one taintedness bit per byte
// (the paper's Section 4.1 memory architecture).
//
// The memory is paged so a 32-bit address space costs only what the program
// touches.  All multi-byte accesses are little-endian.  Word/half accesses
// gather the per-byte taint bits into a TaintBits vector in byte order, and
// stores scatter them back, so taintedness travels with the data through the
// whole hierarchy exactly as the paper requires.
//
// Each page additionally carries a sparse taint summary: an exact count of
// its tainted bytes, rolled up into a global tainted-byte total and a
// tainted-page count.  Taint state is sparse in practice (most pages never
// see a tainted byte), so loads from fully-untainted pages skip the
// taint-bit gather entirely, stores of untainted data into clean pages skip
// the scatter, `any_tainted_in` short-circuits to O(pages overlapped) and
// `tainted_byte_count` is O(1).  The summaries are derived from the taint
// bitmaps and maintained exactly on every mutation, so they survive deep
// copies (snapshot/restore) and `set_taint` by construction.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/taint.hpp"

namespace ptaint::mem {

class TaintedMemory {
 public:
  static constexpr uint32_t kPageShift = 12;
  static constexpr uint32_t kPageSize = 1u << kPageShift;

  TaintedMemory() = default;
  /// Deep copies (pages and taint bits) — the machine snapshot/restore
  /// primitive.  The last-page memo is not carried over.
  TaintedMemory(const TaintedMemory& other) { *this = other; }
  TaintedMemory& operator=(const TaintedMemory& other);
  TaintedMemory(TaintedMemory&&) = default;
  TaintedMemory& operator=(TaintedMemory&&) = default;

  /// Byte accessors.  Like the word accessors below, the memo-hit case is
  /// inlined and anything else takes the out-of-line slow path.
  TaintedByte load_byte(uint32_t addr) const {
    if ((addr >> kPageShift) == memo_index_) {
      ++qstats_.loads;
      const Page& p = *memo_page_;
      const uint32_t off = addr & (kPageSize - 1);
      if (p.tainted_bytes == 0) {
        ++qstats_.clean_page_loads;
        return {p.data[off], false};
      }
      return {p.data[off],
              static_cast<bool>((p.taint[off >> 3] >> (off & 7)) & 1)};
    }
    return load_byte_slow(addr);
  }
  void store_byte(uint32_t addr, TaintedByte b) {
    if ((addr >> kPageShift) == memo_index_) {
      Page& p = *memo_page_;
      const uint32_t off = addr & (kPageSize - 1);
      p.data[off] = b.value;
      if (!b.taint && p.tainted_bytes == 0) return;  // clean page stays clean
      store_byte_taint(p, off, b.taint);
      return;
    }
    store_byte_slow(addr, b);
  }

  /// 16-bit accessors; taint bits land in positions 0..1.
  TaintedWord load_half(uint32_t addr) const;
  void store_half(uint32_t addr, TaintedWord w);

  /// 32-bit accessors; taint bits land in positions 0..3.  The aligned
  /// memo-hit case — virtually every data access in a running guest — is
  /// inlined here; everything else (memo miss, unaligned) takes the
  /// out-of-line slow path, which also refreshes the memo.
  TaintedWord load_word(uint32_t addr) const {
    if ((addr & 3) == 0 && (addr >> kPageShift) == memo_index_) {
      ++qstats_.loads;
      const Page& p = *memo_page_;
      const uint32_t off = addr & (kPageSize - 1);
      const uint8_t* d = p.data.data() + off;
      TaintedWord w;
      w.value = static_cast<uint32_t>(d[0]) |
                (static_cast<uint32_t>(d[1]) << 8) |
                (static_cast<uint32_t>(d[2]) << 16) |
                (static_cast<uint32_t>(d[3]) << 24);
      if (p.tainted_bytes == 0) {
        ++qstats_.clean_page_loads;
        return w;
      }
      w.taint =
          static_cast<TaintBits>((p.taint[off >> 3] >> (off & 7)) & 0xf);
      return w;
    }
    return load_word_slow(addr);
  }
  void store_word(uint32_t addr, TaintedWord w) {
    if ((addr & 3) == 0 && (addr >> kPageShift) == memo_index_) {
      Page& p = *memo_page_;
      const uint32_t off = addr & (kPageSize - 1);
      uint8_t* d = p.data.data() + off;
      d[0] = static_cast<uint8_t>(w.value);
      d[1] = static_cast<uint8_t>(w.value >> 8);
      d[2] = static_cast<uint8_t>(w.value >> 16);
      d[3] = static_cast<uint8_t>(w.value >> 24);
      const uint8_t fresh = static_cast<uint8_t>(w.taint & 0xfu);
      if (fresh == 0 && p.tainted_bytes == 0) return;  // clean-page fast path
      store_word_taint(p, off, fresh);
      return;
    }
    store_word_slow(addr, w);
  }

  /// Bulk helpers used by the loader and the OS layer.
  void write_block(uint32_t addr, std::span<const uint8_t> data,
                   bool tainted = false);
  std::vector<uint8_t> read_block(uint32_t addr, uint32_t len) const;

  /// Reads a NUL-terminated guest string (bounded by `max_len`).
  std::string read_cstring(uint32_t addr, uint32_t max_len = 4096) const;

  /// Marks `len` bytes tainted/untainted without touching the data — the
  /// RT-register trick of Section 4.4, used by the syscall layer.
  void set_taint(uint32_t addr, uint32_t len, bool tainted);

  /// True if any of `len` bytes starting at `addr` is tainted.  Pages whose
  /// summary says fully-untainted are skipped without touching their taint
  /// bitmap; with no tainted page anywhere this is O(1).
  bool any_tainted_in(uint32_t addr, uint32_t len) const;

  /// Number of currently tainted bytes across all mapped pages.  O(1): the
  /// page summaries keep the total incrementally.
  uint64_t tainted_byte_count() const { return tainted_total_; }

  /// Number of mapped pages (for footprint / area-overhead reporting).
  size_t mapped_pages() const { return pages_.size(); }

  /// Number of mapped pages currently holding at least one tainted byte.
  uint32_t tainted_page_count() const { return tainted_pages_; }

  /// True when the page containing `addr` is mapped and fully untainted
  /// (summary check only; an unmapped page reads as untainted zeroes but is
  /// not "mapped and clean").
  bool page_fully_untainted(uint32_t addr) const {
    const Page* p = find_page(addr);
    return p != nullptr && p->tainted_bytes == 0;
  }

  /// Observability counters for the clean-page fast path (ptaint-run
  /// --engine-stats).  Diagnostic only: not part of the architectural
  /// state, reset on copy, never compared across engines.
  struct QueryStats {
    uint64_t loads = 0;             // byte/half/word loads issued
    uint64_t clean_page_loads = 0;  // served by the fully-untainted fast path
  };
  const QueryStats& query_stats() const { return qstats_; }

 private:
  struct Page {
    std::array<uint8_t, kPageSize> data{};
    std::array<uint8_t, kPageSize / 8> taint{};  // 1 bit per byte
    uint32_t tainted_bytes = 0;  // exact popcount of `taint`
  };

  Page& page_for(uint32_t addr);
  const Page* find_page(uint32_t addr) const;

  TaintedByte load_byte_slow(uint32_t addr) const;
  void store_byte_slow(uint32_t addr, TaintedByte b);
  TaintedWord load_word_slow(uint32_t addr) const;
  void store_word_slow(uint32_t addr, TaintedWord w);
  /// Taint-bitmap updates for memo-hit stores (out of line: touching the
  /// bitmap means the page is or becomes dirty — off the hot path).
  void store_byte_taint(Page& p, uint32_t off, bool tainted);
  void store_word_taint(Page& p, uint32_t off, uint8_t fresh);

  /// Applies a tainted-byte delta to a page summary and the global rollups.
  void adjust_taint(Page& p, int32_t delta) {
    if (delta == 0) return;
    if (p.tainted_bytes == 0) ++tainted_pages_;
    p.tainted_bytes = static_cast<uint32_t>(
        static_cast<int64_t>(p.tainted_bytes) + delta);
    tainted_total_ =
        static_cast<uint64_t>(static_cast<int64_t>(tainted_total_) + delta);
    if (p.tainted_bytes == 0) --tainted_pages_;
  }

  std::unordered_map<uint32_t, std::unique_ptr<Page>> pages_;
  uint64_t tainted_total_ = 0;  // sum of Page::tainted_bytes
  uint32_t tainted_pages_ = 0;  // pages with tainted_bytes > 0
  mutable QueryStats qstats_;

  // Single-entry page memo: guest access streams are strongly local (the
  // fetch stream alone stays on one page for up to 1024 instructions), so
  // remembering the last page touched skips the hash lookup on the hot
  // path.  Page objects are owned by unique_ptr, so the cached pointer
  // stays valid across map growth.  Reset on copy.
  static constexpr uint32_t kNoPage = 0xffffffffu;
  mutable uint32_t memo_index_ = kNoPage;
  mutable Page* memo_page_ = nullptr;
};

}  // namespace ptaint::mem
