// Sparse byte-addressable memory extended with one taintedness bit per byte
// (the paper's Section 4.1 memory architecture).
//
// The memory is paged so a 32-bit address space costs only what the program
// touches.  All multi-byte accesses are little-endian.  Word/half accesses
// gather the per-byte taint bits into a TaintBits vector in byte order, and
// stores scatter them back, so taintedness travels with the data through the
// whole hierarchy exactly as the paper requires.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/taint.hpp"

namespace ptaint::mem {

class TaintedMemory {
 public:
  static constexpr uint32_t kPageShift = 12;
  static constexpr uint32_t kPageSize = 1u << kPageShift;

  TaintedMemory() = default;
  /// Deep copies (pages and taint bits) — the machine snapshot/restore
  /// primitive.  The last-page memo is not carried over.
  TaintedMemory(const TaintedMemory& other) { *this = other; }
  TaintedMemory& operator=(const TaintedMemory& other);
  TaintedMemory(TaintedMemory&&) = default;
  TaintedMemory& operator=(TaintedMemory&&) = default;

  /// Byte accessors.
  TaintedByte load_byte(uint32_t addr) const;
  void store_byte(uint32_t addr, TaintedByte b);

  /// 16-bit accessors; taint bits land in positions 0..1.
  TaintedWord load_half(uint32_t addr) const;
  void store_half(uint32_t addr, TaintedWord w);

  /// 32-bit accessors; taint bits land in positions 0..3.
  TaintedWord load_word(uint32_t addr) const;
  void store_word(uint32_t addr, TaintedWord w);

  /// Bulk helpers used by the loader and the OS layer.
  void write_block(uint32_t addr, std::span<const uint8_t> data,
                   bool tainted = false);
  std::vector<uint8_t> read_block(uint32_t addr, uint32_t len) const;

  /// Reads a NUL-terminated guest string (bounded by `max_len`).
  std::string read_cstring(uint32_t addr, uint32_t max_len = 4096) const;

  /// Marks `len` bytes tainted/untainted without touching the data — the
  /// RT-register trick of Section 4.4, used by the syscall layer.
  void set_taint(uint32_t addr, uint32_t len, bool tainted);

  /// True if any of `len` bytes starting at `addr` is tainted.
  bool any_tainted_in(uint32_t addr, uint32_t len) const;

  /// Number of currently tainted bytes across all mapped pages.
  uint64_t tainted_byte_count() const;

  /// Number of mapped pages (for footprint / area-overhead reporting).
  size_t mapped_pages() const { return pages_.size(); }

 private:
  struct Page {
    std::array<uint8_t, kPageSize> data{};
    std::array<uint8_t, kPageSize / 8> taint{};  // 1 bit per byte
  };

  Page& page_for(uint32_t addr);
  const Page* find_page(uint32_t addr) const;

  std::unordered_map<uint32_t, std::unique_ptr<Page>> pages_;

  // Single-entry page memo: guest access streams are strongly local (the
  // fetch stream alone stays on one page for up to 1024 instructions), so
  // remembering the last page touched skips the hash lookup on the hot
  // path.  Page objects are owned by unique_ptr, so the cached pointer
  // stays valid across map growth.  Reset on copy.
  static constexpr uint32_t kNoPage = 0xffffffffu;
  mutable uint32_t memo_index_ = kNoPage;
  mutable Page* memo_page_ = nullptr;
};

}  // namespace ptaint::mem
