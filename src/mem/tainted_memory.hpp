// Sparse byte-addressable memory extended with one taintedness bit per byte
// (the paper's Section 4.1 memory architecture).
//
// The memory is paged so a 32-bit address space costs only what the program
// touches.  All multi-byte accesses are little-endian.  Word/half accesses
// gather the per-byte taint bits into a TaintBits vector in byte order, and
// stores scatter them back, so taintedness travels with the data through the
// whole hierarchy exactly as the paper requires.
//
// Each byte additionally carries three *address-provenance* bits (stack /
// heap / text — see mem/taint.hpp), stored as a nibble array per page.
// They ride along through every load/store exactly like the data-taint bit
// and feed the SYS_WRITE/SYS_SEND leak detector; they never trip the
// pointer-taintedness gates, and all data-plane summaries and queries below
// (`tainted_byte_count`, `any_tainted_in`, ...) keep their original
// data-only semantics.
//
// Each page additionally carries sparse taint summaries: an exact count of
// its data-tainted bytes and of its address-tainted bytes, rolled up into
// global totals.  Taint state is sparse in practice (most pages never see a
// tainted byte), so loads from fully-untainted pages skip the taint-bit
// gather entirely, stores of untainted data into clean pages skip the
// scatter, `any_tainted_in` short-circuits to O(pages overlapped) and
// `tainted_byte_count` is O(1).  The summaries are derived from the taint
// bitmaps and maintained exactly on every mutation, so they survive copies
// (snapshot/restore) and `set_taint` by construction.
//
// Copy-on-write (DESIGN.md §10): pages (data + taint bits + summary) are
// immutable ref-counted blocks.  Copying a TaintedMemory shares every page
// — O(mapped pages) pointer copies, no byte movement — and the first store
// or taint-write into a shared page clones just that page.  Because pages
// are only ever mutated through an exclusively-owned reference, a
// MachineSnapshot and any number of forked machines can share one page set;
// the snapshot's image is immutable by construction.  Each copy also
// remembers the identity of the memory it was copied from plus the set of
// pages it has diverged on, so restoring from the *same* source again is a
// delta: `delta_restore` drops the dirty pages back to the shared blocks
// and touches nothing else — O(dirty set) instead of O(address space).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "mem/taint.hpp"

namespace ptaint::mem {

class TaintedMemory {
 public:
  static constexpr uint32_t kPageShift = 12;
  static constexpr uint32_t kPageSize = 1u << kPageShift;

  /// One page image: data bytes plus the taint bitmap and the
  /// address-provenance nibble array, with exact sparse summaries.  Pages
  /// are immutable ref-counted blocks (see the COW notes above): anyone
  /// holding a shared_ptr<Page> alongside another owner may read it but
  /// never write it — mutation only ever happens through page_for(), which
  /// clones shared blocks first.  Public so the content-addressed snapshot
  /// store (mem/page_store.hpp, DESIGN.md §13) can hash, compress and
  /// rebuild page images.
  struct Page {
    std::array<uint8_t, kPageSize> data{};
    std::array<uint8_t, kPageSize / 8> taint{};  // 1 data bit per byte
    // Address-provenance planes, one nibble per byte (low nibble = even
    // byte): bit 1 stack, bit 2 heap, bit 3 text — the kByte* layout with
    // the data bit always clear.
    std::array<uint8_t, kPageSize / 2> aprov{};
    uint32_t tainted_bytes = 0;  // exact popcount of `taint`
    uint32_t addr_bytes = 0;     // bytes with a non-zero aprov nibble
  };

  TaintedMemory();
  /// Copies share every page copy-on-write; behaviour is indistinguishable
  /// from a deep copy (the machine snapshot/restore primitive), the cost is
  /// O(mapped pages) pointer copies.  The page memos are not carried over.
  TaintedMemory(const TaintedMemory& other) : TaintedMemory() {
    share_from(other);
  }
  TaintedMemory& operator=(const TaintedMemory& other) {
    if (this != &other) share_from(other);
    return *this;
  }
  TaintedMemory(TaintedMemory&&) = default;
  TaintedMemory& operator=(TaintedMemory&&) = default;

  /// Byte accessors.  Like the word accessors below, the memo-hit case is
  /// inlined and anything else takes the out-of-line slow path.  Loads and
  /// stores use separate memos: the store memo only ever points to an
  /// exclusively-owned (already copied-on-write, dirty-tracked) page, so
  /// the hot store path stays one compare even under page sharing.
  TaintedByte load_byte(uint32_t addr) const {
    if ((addr >> kPageShift) == memo_index_) {
      ++qstats_.loads;
      const Page& p = *memo_page_;
      const uint32_t off = addr & (kPageSize - 1);
      if ((p.tainted_bytes | p.addr_bytes) == 0) {
        ++qstats_.clean_page_loads;
        return {p.data[off], uint8_t{0}};
      }
      return {p.data[off], gather_planes1(p, off)};
    }
    return load_byte_slow(addr);
  }
  void store_byte(uint32_t addr, TaintedByte b) {
    if ((addr >> kPageShift) == wmemo_index_) {
      Page& p = *wmemo_page_;
      const uint32_t off = addr & (kPageSize - 1);
      p.data[off] = b.value;
      if (b.planes == 0 && (p.tainted_bytes | p.addr_bytes) == 0) {
        return;  // clean page stays clean
      }
      store_byte_taint(p, off, b.planes);
      return;
    }
    store_byte_slow(addr, b);
  }

  /// 16-bit accessors; taint bits land in plane positions 0..1.
  TaintedWord load_half(uint32_t addr) const;
  void store_half(uint32_t addr, TaintedWord w);

  /// 32-bit accessors; taint bits land in plane positions 0..3.  The aligned
  /// memo-hit case — virtually every data access in a running guest — is
  /// inlined here; everything else (memo miss, unaligned) takes the
  /// out-of-line slow path, which also refreshes the memo.
  TaintedWord load_word(uint32_t addr) const {
    if ((addr & 3) == 0 && (addr >> kPageShift) == memo_index_) {
      ++qstats_.loads;
      const Page& p = *memo_page_;
      const uint32_t off = addr & (kPageSize - 1);
      const uint8_t* d = p.data.data() + off;
      TaintedWord w;
      w.value = static_cast<uint32_t>(d[0]) |
                (static_cast<uint32_t>(d[1]) << 8) |
                (static_cast<uint32_t>(d[2]) << 16) |
                (static_cast<uint32_t>(d[3]) << 24);
      if ((p.tainted_bytes | p.addr_bytes) == 0) {
        ++qstats_.clean_page_loads;
        return w;
      }
      w.taint = gather_taint4(p, off);
      return w;
    }
    return load_word_slow(addr);
  }
  void store_word(uint32_t addr, TaintedWord w) {
    if ((addr & 3) == 0 && (addr >> kPageShift) == wmemo_index_) {
      Page& p = *wmemo_page_;
      const uint32_t off = addr & (kPageSize - 1);
      uint8_t* d = p.data.data() + off;
      d[0] = static_cast<uint8_t>(w.value);
      d[1] = static_cast<uint8_t>(w.value >> 8);
      d[2] = static_cast<uint8_t>(w.value >> 16);
      d[3] = static_cast<uint8_t>(w.value >> 24);
      if (w.taint == 0 && (p.tainted_bytes | p.addr_bytes) == 0) {
        return;  // clean-page fast path
      }
      store_word_taint(p, off, w.taint);
      return;
    }
    store_word_slow(addr, w);
  }

  /// Bulk helpers used by the loader and the OS layer.  Overwriting bytes
  /// clears their address planes (fresh kernel data carries none).
  void write_block(uint32_t addr, std::span<const uint8_t> data,
                   bool tainted = false);
  std::vector<uint8_t> read_block(uint32_t addr, uint32_t len) const;

  /// Reads a NUL-terminated guest string (bounded by `max_len`).
  std::string read_cstring(uint32_t addr, uint32_t max_len = 4096) const;

  /// Marks `len` bytes data-tainted/untainted without touching the data —
  /// the RT-register trick of Section 4.4, used by the syscall layer.
  /// Address planes are untouched.
  void set_taint(uint32_t addr, uint32_t len, bool tainted);

  /// Overwrites the address-provenance planes of `len` bytes (kByte* bits
  /// of mem/taint.hpp; 0 clears).  Data taint is untouched.
  void set_addr_taint(uint32_t addr, uint32_t len, uint8_t planes);

  /// True if any of `len` bytes starting at `addr` is data-tainted.  Pages
  /// whose summary says fully-untainted are skipped without touching their
  /// taint bitmap; with no tainted page anywhere this is O(1).
  bool any_tainted_in(uint32_t addr, uint32_t len) const;

  /// OR of the address-provenance planes over `len` bytes (kByte* bits).
  /// O(1) when no byte anywhere carries address taint.
  uint8_t addr_planes_in(uint32_t addr, uint32_t len) const;

  /// Address of the first byte in [addr, addr+len) carrying any address
  /// plane; nullopt when the range is clean.  Used for leak-alert detail.
  std::optional<uint32_t> first_addr_tainted(uint32_t addr,
                                             uint32_t len) const;

  /// Number of currently data-tainted bytes across all mapped pages.  O(1):
  /// the page summaries keep the total incrementally.
  uint64_t tainted_byte_count() const { return tainted_total_; }

  /// Number of bytes carrying any address-provenance plane.  O(1).
  uint64_t addr_tainted_byte_count() const { return addr_total_; }

  /// Number of mapped pages (for footprint / area-overhead reporting).
  size_t mapped_pages() const { return pages_.size(); }

  /// Number of mapped pages currently holding at least one data-tainted
  /// byte.
  uint32_t tainted_page_count() const { return tainted_pages_; }

  /// True when the page containing `addr` is mapped and fully untainted in
  /// the data plane (summary check only; an unmapped page reads as
  /// untainted zeroes but is not "mapped and clean").
  bool page_fully_untainted(uint32_t addr) const {
    const Page* p = find_page(addr);
    return p != nullptr && p->tainted_bytes == 0;
  }

  // --- copy-on-write snapshot support (DESIGN.md §10) ---------------------

  /// Stable identity of this memory object (unique per construction,
  /// preserved across moves).  `delta_restore` uses it to prove the caller
  /// is restoring from the same source it last copied from.
  uint64_t id() const { return id_; }

  /// Forces an actual deep copy — private pages, no sharing, no delta
  /// tracking.  The PTAINT_NO_COW debugging path and the reference
  /// implementation the COW tests cross-check against.
  void deep_copy_from(const TaintedMemory& other);

  /// Delta restore: if this memory was last copied from `base` (same id),
  /// drop every page it has diverged on back to the shared block and return
  /// the page indices that were reverted (the caller invalidates derived
  /// state — decode caches — for exactly those pages).  Clean pages are
  /// untouched.  Returns nullopt (and changes nothing) when the base does
  /// not match; the caller falls back to a full copy.
  std::optional<std::vector<uint32_t>> delta_restore(
      const TaintedMemory& base);

  /// Drops the delta-tracking baseline (e.g. after the owner loads a new
  /// program into this memory): the next restore must be a full copy.
  void forget_base();

  /// Declares `base` — which must currently be an identical page-for-page
  /// share of this memory, e.g. a snapshot just copied from it — as the
  /// delta baseline, so the *first* restore back to that snapshot already
  /// takes the delta path.  Clears the write memo: every page is shared
  /// with the baseline now, so the next store must re-enter the tracked
  /// copy-on-write path.
  void track_against(const TaintedMemory& base) {
    base_id_ = base.id_;
    tracking_ = true;
    dirty_.clear();
    wmemo_index_ = kNoPage;
    wmemo_page_ = nullptr;
  }

  /// Pages this memory has diverged on (created or copied-on-write) since
  /// it last copied from its base; 0 when not tracking a base.
  size_t dirty_page_count() const { return dirty_.size(); }

  // --- content-addressed snapshot store hooks (DESIGN.md §13) -------------

  /// Every mapped (page index, block) pair, in unspecified order.  The
  /// blocks are the live ref-counted pages; holding them alongside this
  /// memory pins them shared (so any write through this memory clones
  /// first — the usual COW contract).
  std::vector<std::pair<uint32_t, std::shared_ptr<Page>>> page_blocks() const;

  /// Swaps the block at `idx` for `block`, which must hold byte-identical
  /// content (the store interning a freshly built page for an existing
  /// canonical duplicate).  Summaries and rollups are untouched — equal
  /// content means equal summaries; the page memos are reset because they
  /// may point at the superseded block.
  void replace_page_block(uint32_t idx, std::shared_ptr<Page> block);

  /// Rebuilds this memory wholesale from (index, block) pairs — snapshot
  /// rehydration from the store.  Rollups are recomputed from the block
  /// summaries; memos, delta tracking and dirty state are reset (the next
  /// restore from this memory is a full one).
  void adopt_page_blocks(
      std::vector<std::pair<uint32_t, std::shared_ptr<Page>>> blocks);

  /// Pages still shared with another TaintedMemory (ref-count > 1).
  /// O(mapped pages) — reporting only, not for hot paths.
  size_t shared_page_count() const;

  /// Copy-on-write observability counters.  Diagnostic only: cumulative
  /// over this object's lifetime, never part of architectural state.
  struct CowStats {
    uint64_t shares = 0;          // full-copy restores served by sharing
    uint64_t deep_copies = 0;     // forced full deep copies (PTAINT_NO_COW)
    uint64_t cow_breaks = 0;      // shared pages cloned by a first write
    uint64_t delta_restores = 0;  // restores served by the dirty-page delta
    uint64_t pages_delta_restored = 0;  // dirty pages dropped back to shared
  };
  const CowStats& cow_stats() const { return cstats_; }

  /// Observability counters for the clean-page fast path (ptaint-run
  /// --engine-stats).  Diagnostic only: not part of the architectural
  /// state, reset on copy, never compared across engines.
  struct QueryStats {
    uint64_t loads = 0;             // byte/half/word loads issued
    uint64_t clean_page_loads = 0;  // served by the fully-untainted fast path
  };
  const QueryStats& query_stats() const { return qstats_; }

  /// Flat layout descriptor for the JIT tier (DESIGN.md §12).  Emitted code
  /// replays the inline memo-hit fast paths above — one page-index compare,
  /// one clean-page summary compare, then a raw access into Page::data —
  /// against these byte offsets (memo fields relative to this object, page
  /// fields relative to a Page).  The emitted path intentionally skips the
  /// QueryStats bumps (diagnostic-only counters); every other observable
  /// effect matches the inline accessors bit for bit.
  struct JitLayout {
    uint32_t memo_index;    // read-memo page index (uint32)
    uint32_t memo_page;     // read-memo Page* (8 bytes)
    uint32_t wmemo_index;   // write-memo page index (uint32)
    uint32_t wmemo_page;    // write-memo Page* (8 bytes)
    uint32_t page_data;     // Page::data — byte 0 of the page image
    uint32_t page_summary;  // Page::tainted_bytes; one aligned qword read
                            // here covers addr_bytes too, so "clean page"
                            // is a single compare against 0
  };
  JitLayout jit_layout() const;

 private:
  /// Plane nibble of one byte: data bit from the bitmap + aprov nibble.
  static uint8_t gather_planes1(const Page& p, uint32_t off) {
    uint8_t planes = 0;
    if (p.tainted_bytes != 0) {
      planes = static_cast<uint8_t>((p.taint[off >> 3] >> (off & 7)) & 1);
    }
    if (p.addr_bytes != 0) {
      planes |= static_cast<uint8_t>(
          (p.aprov[off >> 1] >> ((off & 1) * 4)) & kByteAddrMask);
    }
    return planes;
  }

  /// Word TaintBits for an aligned 4-byte span (off % 4 == 0): the 4 data
  /// bits share one bitmap byte, the 4 aprov nibbles share two array bytes.
  static TaintBits gather_taint4(const Page& p, uint32_t off) {
    TaintBits t = 0;
    if (p.tainted_bytes != 0) {
      t = static_cast<TaintBits>((p.taint[off >> 3] >> (off & 7)) & 0xf);
    }
    if (p.addr_bytes != 0) {
      const uint32_t packed =
          static_cast<uint32_t>(p.aprov[off >> 1]) |
          (static_cast<uint32_t>(p.aprov[(off >> 1) + 1]) << 8);
      if (packed != 0) {
        for (int i = 0; i < 4; ++i) {
          t |= planes_to_word(
              static_cast<uint8_t>((packed >> (4 * i)) & kByteAddrMask), i);
        }
      }
    }
    return t;
  }

  /// Returns an exclusively-owned page for writing, cloning a shared page
  /// (copy-on-write) or creating a missing one.  The memo-hit check is
  /// inlined; the miss path is out of line (hash probe + ownership check).
  Page& page_for(uint32_t addr) {
    const uint32_t idx = addr >> kPageShift;
    if (idx == wmemo_index_) return *wmemo_page_;
    return page_for_slow(idx);
  }
  Page& page_for_slow(uint32_t idx);

  /// Read-only page lookup.  Inlined including the miss path's map probe:
  /// loads are the hottest slow-path caller (fetch stream, any_tainted_in)
  /// and the probe is two compares + a find once the memo check fails.
  const Page* find_page(uint32_t addr) const {
    const uint32_t idx = addr >> kPageShift;
    if (idx == memo_index_) return memo_page_;
    const auto it = pages_.find(idx);
    if (it == pages_.end()) return nullptr;
    memo_index_ = idx;
    memo_page_ = it->second.get();
    return memo_page_;
  }

  /// Becomes a copy of `other` by sharing every page (copy-on-write) and
  /// records `other` as the delta baseline.  Never reads `other`'s memos,
  /// so concurrent copies from one shared snapshot are race-free; it does
  /// conditionally clear `other`'s *write* memo (the snapshotting machine
  /// must not keep writing through a now-shared page), a write that only
  /// fires on the owner's own thread — snapshots never have one set.
  void share_from(const TaintedMemory& other);

  TaintedByte load_byte_slow(uint32_t addr) const;
  void store_byte_slow(uint32_t addr, TaintedByte b);
  TaintedWord load_word_slow(uint32_t addr) const;
  void store_word_slow(uint32_t addr, TaintedWord w);
  /// Taint updates for memo-hit stores (out of line: touching the
  /// bitmap means the page is or becomes tainted — off the hot path).
  void store_byte_taint(Page& p, uint32_t off, uint8_t planes);
  void store_word_taint(Page& p, uint32_t off, TaintBits fresh);
  /// Overwrites one byte's aprov nibble, maintaining the summaries.
  void store_byte_aprov(Page& p, uint32_t off, uint8_t nib);

  /// Applies a data-tainted-byte delta to a page summary and the global
  /// rollups.
  void adjust_taint(Page& p, int32_t delta) {
    if (delta == 0) return;
    if (p.tainted_bytes == 0) ++tainted_pages_;
    p.tainted_bytes = static_cast<uint32_t>(
        static_cast<int64_t>(p.tainted_bytes) + delta);
    tainted_total_ =
        static_cast<uint64_t>(static_cast<int64_t>(tainted_total_) + delta);
    if (p.tainted_bytes == 0) --tainted_pages_;
  }

  std::unordered_map<uint32_t, std::shared_ptr<Page>> pages_;
  uint64_t tainted_total_ = 0;  // sum of Page::tainted_bytes
  uint64_t addr_total_ = 0;     // sum of Page::addr_bytes
  uint32_t tainted_pages_ = 0;  // pages with tainted_bytes > 0
  mutable QueryStats qstats_;
  CowStats cstats_;

  // Delta-restore bookkeeping: identity of the memory this one last shared
  // its pages from, and the pages it has diverged on since (every index in
  // dirty_ holds an exclusively-owned page or one created after the copy).
  uint64_t id_ = 0;       // this object's identity (see id())
  uint64_t base_id_ = 0;  // identity of the share_from source
  bool tracking_ = false;
  std::unordered_set<uint32_t> dirty_;

  // Single-entry page memos: guest access streams are strongly local (the
  // fetch stream alone stays on one page for up to 1024 instructions), so
  // remembering the last page touched skips the hash lookup on the hot
  // path.  Pages are heap blocks owned by shared_ptr, so the cached
  // pointers stay valid across map growth.  The read memo may point to a
  // shared page; the write memo only ever points to an exclusively-owned,
  // dirty-tracked page (page_for_slow guarantees it) and is cleared
  // whenever this memory's pages become shared.  Reset on copy.
  static constexpr uint32_t kNoPage = 0xffffffffu;
  mutable uint32_t memo_index_ = kNoPage;
  mutable Page* memo_page_ = nullptr;
  mutable uint32_t wmemo_index_ = kNoPage;
  mutable Page* wmemo_page_ = nullptr;
};

}  // namespace ptaint::mem
