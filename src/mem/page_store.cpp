#include "mem/page_store.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace ptaint::mem {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t fnv1a(uint64_t h, const uint8_t* data, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

// Page-file header: magic, format version, raw size, compressed size.
constexpr uint32_t kPageMagic = 0x47505450u;  // "PTPG"
constexpr uint32_t kPageVersion = 1;

/// PackBits-style RLE: control byte c < 128 emits c+1 literal bytes,
/// c >= 128 repeats the next byte 257-c times (2..129 capped to 128).
void pack(const uint8_t* src, size_t n, std::vector<uint8_t>& out) {
  size_t i = 0;
  while (i < n) {
    size_t run = 1;
    while (i + run < n && src[i + run] == src[i] && run < 128) ++run;
    if (run >= 2) {
      out.push_back(static_cast<uint8_t>(257 - run));
      out.push_back(src[i]);
      i += run;
      continue;
    }
    size_t lit = 1;
    while (i + lit < n && lit < 128) {
      if (i + lit + 2 < n && src[i + lit] == src[i + lit + 1] &&
          src[i + lit] == src[i + lit + 2]) {
        break;  // an upcoming run of >= 3 ends the literal stretch
      }
      ++lit;
    }
    out.push_back(static_cast<uint8_t>(lit - 1));
    out.insert(out.end(), src + i, src + i + lit);
    i += lit;
  }
}

bool unpack(const uint8_t* src, size_t n, uint8_t* dst, size_t dst_size) {
  size_t i = 0, o = 0;
  while (i < n) {
    const uint8_t c = src[i++];
    if (c < 128) {
      const size_t lit = static_cast<size_t>(c) + 1;
      if (i + lit > n || o + lit > dst_size) return false;
      std::memcpy(dst + o, src + i, lit);
      i += lit;
      o += lit;
    } else {
      const size_t run = 257 - static_cast<size_t>(c);
      if (i >= n || o + run > dst_size) return false;
      std::memset(dst + o, src[i++], run);
      o += run;
    }
  }
  return o == dst_size;
}

std::string page_file_name(const PageStore::Key& key) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "p-%016llx-%u.page",
                static_cast<unsigned long long>(key.hash), key.slot);
  return buf;
}

/// Write-to-temp + rename: a crash mid-write leaves a stale .tmp file,
/// never a torn page/blob (readers treat absent/corrupt files as a miss).
bool durable_write(const std::filesystem::path& path,
                   const std::vector<uint8_t>& bytes) {
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  return !ec;
}

void put_u32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

uint32_t get_u32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

uint64_t PageStore::hash_page(const Page& page) {
  uint64_t h = kFnvOffset;
  h = fnv1a(h, page.data.data(), page.data.size());
  h = fnv1a(h, page.taint.data(), page.taint.size());
  h = fnv1a(h, page.aprov.data(), page.aprov.size());
  return h;
}

std::vector<uint8_t> PageStore::compress_page(const Page& page) {
  std::vector<uint8_t> out;
  out.reserve(256);
  pack(page.data.data(), page.data.size(), out);
  pack(page.taint.data(), page.taint.size(), out);
  pack(page.aprov.data(), page.aprov.size(), out);
  return out;
}

std::shared_ptr<PageStore::Page> PageStore::decompress_page(
    const uint8_t* data, size_t size) {
  // The three plane streams were packed back to back; unpack them as one
  // buffer (PackBits never emits a control byte without its payload, so
  // the concatenation round-trips).
  std::vector<uint8_t> raw(kPlaneBytes);
  if (!unpack(data, size, raw.data(), raw.size())) return nullptr;
  auto page = std::make_shared<Page>();
  const uint8_t* p = raw.data();
  std::memcpy(page->data.data(), p, page->data.size());
  p += page->data.size();
  std::memcpy(page->taint.data(), p, page->taint.size());
  p += page->taint.size();
  std::memcpy(page->aprov.data(), p, page->aprov.size());
  // Summaries are derived state: recompute instead of trusting the image.
  uint32_t tainted = 0;
  for (uint8_t b : page->taint) tainted += std::popcount(b);
  page->tainted_bytes = tainted;
  uint32_t addr = 0;
  for (uint8_t b : page->aprov) {
    addr += (b & 0x0f) != 0;
    addr += (b & 0xf0) != 0;
  }
  page->addr_bytes = addr;
  return page;
}

PageStore::PageStore(Config config) : config_(std::move(config)) {
  if (config_.disk_dir.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(config_.disk_dir, ec);
  // Register page files from a previous run: content stays on disk until
  // fetched, so a warm restart costs an index entry per page, not a read.
  for (const auto& entry :
       std::filesystem::directory_iterator(config_.disk_dir, ec)) {
    unsigned long long hash = 0;
    unsigned slot = 0;
    const std::string name = entry.path().filename().string();
    if (std::sscanf(name.c_str(), "p-%16llx-%u.page", &hash, &slot) != 2 ||
        name.size() < 7 || name.substr(name.size() - 5) != ".page") {
      continue;
    }
    auto& bucket = index_[hash];
    if (bucket.size() <= slot) bucket.resize(slot + 1);
    bucket[slot].present = true;
    bucket[slot].on_disk = true;
  }
  writer_ = std::thread([this] { writer_main(); });
}

PageStore::~PageStore() {
  if (writer_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(write_mutex_);
      write_stop_ = true;
    }
    write_cv_.notify_all();
    writer_.join();  // the writer drains the queue before exiting
  }
}

PageStore::Slot* PageStore::find_slot(const Key& key) {
  auto it = index_.find(key.hash);
  if (it == index_.end() || key.slot >= it->second.size()) return nullptr;
  Slot& slot = it->second[key.slot];
  return slot.present ? &slot : nullptr;
}

std::shared_ptr<PageStore::Page> PageStore::load_from_disk(const Key& key) {
  const std::filesystem::path path =
      std::filesystem::path(config_.disk_dir) / page_file_name(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) return nullptr;
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  if (bytes.size() < 16) return nullptr;
  if (get_u32(bytes.data()) != kPageMagic ||
      get_u32(bytes.data() + 4) != kPageVersion ||
      get_u32(bytes.data() + 8) != kPlaneBytes) {
    return nullptr;
  }
  const uint32_t comp = get_u32(bytes.data() + 12);
  if (bytes.size() != 16 + static_cast<size_t>(comp)) return nullptr;
  return decompress_page(bytes.data() + 16, comp);
}

std::pair<std::shared_ptr<PageStore::Page>, PageStore::Key> PageStore::intern(
    std::shared_ptr<Page> page) {
  const uint64_t hash = hash_page(*page);
  std::unique_lock<std::mutex> lock(mutex_);
  ++stats_.interned_refs;
  auto& bucket = index_[hash];
  for (uint32_t i = 0; i < bucket.size(); ++i) {
    Slot& slot = bucket[i];
    if (!slot.present) continue;
    const Key key{hash, i};
    // Materialize for the exact-content compare (bucket scans are almost
    // always a single hot slot; inflating here is the rare collision or
    // evicted-content path, and the block is about to be referenced anyway).
    std::shared_ptr<Page> canon = slot.hot;
    if (!canon && !slot.compressed.empty()) {
      canon = decompress_page(slot.compressed.data(), slot.compressed.size());
      ++stats_.decompressions;
    }
    if (!canon && slot.on_disk) {
      canon = load_from_disk(key);
      ++stats_.disk_reads;
    }
    if (!canon) continue;  // unreadable page file: treat as vacant content
    if (canon->data != page->data || canon->taint != page->taint ||
        canon->aprov != page->aprov) {
      continue;  // full-hash collision: try the next slot
    }
    if (!slot.hot) {
      slot.hot = canon;
      ++hot_count_;
    }
    ++slot.pins;
    slot.last_touch = ++tick_;
    ++stats_.dedup_hits;
    return {slot.hot, key};
  }
  // New content: claim a vacant slot id or append one.
  uint32_t slot_id = static_cast<uint32_t>(bucket.size());
  for (uint32_t i = 0; i < bucket.size(); ++i) {
    if (!bucket[i].present) {
      slot_id = i;
      break;
    }
  }
  if (slot_id == bucket.size()) bucket.emplace_back();
  Slot& slot = bucket[slot_id];
  slot = Slot{};
  slot.present = true;
  slot.hot = page;
  slot.pins = 1;
  slot.last_touch = ++tick_;
  ++hot_count_;
  const Key key{hash, slot_id};
  if (!config_.disk_dir.empty()) {
    slot.queued = true;
    PendingWrite w;
    w.name = page_file_name(key);
    w.page = page;
    w.key = key;
    {
      std::lock_guard<std::mutex> wlock(write_mutex_);
      write_queue_.push_back(std::move(w));
    }
    write_cv_.notify_all();
  }
  evict_cold_locked(lock);
  return {std::move(page), key};
}

std::shared_ptr<PageStore::Page> PageStore::fetch(const Key& key) {
  std::unique_lock<std::mutex> lock(mutex_);
  Slot* slot = find_slot(key);
  if (!slot) return nullptr;
  slot->last_touch = ++tick_;
  if (slot->hot) return slot->hot;
  if (!slot->compressed.empty()) {
    slot->hot =
        decompress_page(slot->compressed.data(), slot->compressed.size());
    ++stats_.decompressions;
  } else if (slot->on_disk) {
    slot->hot = load_from_disk(key);
    ++stats_.disk_reads;
  }
  if (slot->hot) ++hot_count_;
  return slot->hot;
}

bool PageStore::pin(const Key& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  Slot* slot = find_slot(key);
  if (!slot) return false;
  ++slot->pins;
  return true;
}

void PageStore::release(const Key& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  Slot* slot = find_slot(key);
  if (slot && slot->pins > 0) --slot->pins;
}

void PageStore::evict_cold() {
  std::unique_lock<std::mutex> lock(mutex_);
  evict_cold_locked(lock);
}

void PageStore::evict_cold_locked(std::unique_lock<std::mutex>& lock) {
  (void)lock;
  if (hot_count_ <= config_.hot_page_budget) return;
  // Coldest-first over evictable blocks: materialized, and the store holds
  // the only reference (a block shared with a hydrated snapshot or a live
  // machine stays hot — compressing it would save nothing).
  std::vector<std::pair<uint64_t, Slot*>> victims;
  for (auto& [hash, bucket] : index_) {
    for (Slot& slot : bucket) {
      if (slot.present && slot.hot && slot.hot.use_count() == 1) {
        victims.emplace_back(slot.last_touch, &slot);
      }
    }
  }
  std::sort(victims.begin(), victims.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [touch, slot] : victims) {
    if (hot_count_ <= config_.hot_page_budget) break;
    if (slot->compressed.empty()) {
      slot->compressed = compress_page(*slot->hot);
    }
    slot->hot.reset();
    --hot_count_;
    ++stats_.evictions;
  }
}

void PageStore::drop_caches(bool compressed_images) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [hash, bucket] : index_) {
    for (Slot& slot : bucket) {
      if (!slot.present) continue;
      if (slot.hot && slot.hot.use_count() == 1) {
        if (slot.compressed.empty() && !slot.on_disk) {
          slot.compressed = compress_page(*slot.hot);
        }
        slot.hot.reset();
        --hot_count_;
        ++stats_.evictions;
      }
      if (compressed_images && slot.on_disk && !slot.queued) {
        slot.compressed.clear();
        slot.compressed.shrink_to_fit();
      }
    }
  }
}

void PageStore::queue_blob(const std::string& name,
                           std::vector<uint8_t> bytes) {
  if (config_.disk_dir.empty()) return;
  PendingWrite w;
  w.name = name;
  w.bytes = std::move(bytes);
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    write_queue_.push_back(std::move(w));
  }
  write_cv_.notify_all();
}

void PageStore::flush() {
  std::unique_lock<std::mutex> lock(write_mutex_);
  write_cv_.wait(lock, [this] {
    return write_queue_.empty() && writes_in_flight_ == 0;
  });
}

void PageStore::writer_main() {
  for (;;) {
    PendingWrite w;
    {
      std::unique_lock<std::mutex> lock(write_mutex_);
      write_cv_.wait(lock,
                     [this] { return !write_queue_.empty() || write_stop_; });
      if (write_queue_.empty()) return;  // stop requested and drained
      w = std::move(write_queue_.front());
      write_queue_.pop_front();
      ++writes_in_flight_;
    }
    // Compress and write without any lock held: page bytes are immutable
    // once interned (the store's own reference keeps writers cloning).
    std::vector<uint8_t> bytes;
    if (w.page) {
      const std::vector<uint8_t> comp = compress_page(*w.page);
      bytes.reserve(16 + comp.size());
      put_u32(bytes, kPageMagic);
      put_u32(bytes, kPageVersion);
      put_u32(bytes, static_cast<uint32_t>(kPlaneBytes));
      put_u32(bytes, static_cast<uint32_t>(comp.size()));
      bytes.insert(bytes.end(), comp.begin(), comp.end());
    } else {
      bytes = std::move(w.bytes);
    }
    const bool ok = durable_write(
        std::filesystem::path(config_.disk_dir) / w.name, bytes);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (ok) ++stats_.disk_writes;
      if (w.page) {
        if (Slot* slot = find_slot(w.key)) {
          slot->queued = false;
          if (ok) slot->on_disk = true;
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(write_mutex_);
      --writes_in_flight_;
    }
    write_cv_.notify_all();
  }
}

PageStore::Stats PageStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats out = stats_;
  for (const auto& [hash, bucket] : index_) {
    for (const Slot& slot : bucket) {
      if (!slot.present) continue;
      ++out.canonical_pages;
      if (slot.hot) ++out.hot_pages;
      if (!slot.compressed.empty()) {
        ++out.compressed_pages;
        out.uncompressed_bytes += kPlaneBytes;
        out.compressed_bytes += slot.compressed.size();
      }
      if (slot.on_disk) ++out.disk_pages;
    }
  }
  return out;
}

std::vector<std::pair<uint32_t, PageStore::Key>> intern_memory(
    PageStore& store, TaintedMemory& memory) {
  std::vector<std::pair<uint32_t, PageStore::Key>> refs;
  auto blocks = memory.page_blocks();
  refs.reserve(blocks.size());
  for (auto& [idx, block] : blocks) {
    auto [canon, key] = store.intern(block);
    if (canon.get() != block.get()) memory.replace_page_block(idx, canon);
    refs.emplace_back(idx, key);
  }
  return refs;
}

bool adopt_memory(PageStore& store, TaintedMemory& memory,
                  const std::vector<std::pair<uint32_t, PageStore::Key>>&
                      refs) {
  std::vector<std::pair<uint32_t, std::shared_ptr<TaintedMemory::Page>>>
      blocks;
  blocks.reserve(refs.size());
  for (const auto& [idx, key] : refs) {
    std::shared_ptr<TaintedMemory::Page> page = store.fetch(key);
    if (!page) return false;
    blocks.emplace_back(idx, std::move(page));
  }
  memory.adopt_page_blocks(std::move(blocks));
  return true;
}

}  // namespace ptaint::mem
