// Content-addressed page store: dedup, cold-page compression, disk tier.
//
// DESIGN.md §13.  `SnapshotCache` holds one page set per key; at service
// scale (thousands of app x policy x engine configs) the near-identical
// page images across keys dominate memory, not restore latency.  Pages are
// immutable ref-counted blocks (COW since PR 4), so identical content can
// be stored once, period:
//
//   * interning — each page is hashed (FNV-1a 64 over data + taint bitmap
//     + address-provenance nibbles) into a dedup index; an intern of
//     already-known content returns the existing canonical block and bumps
//     its pin count.  Hash collisions are handled by full-content compare
//     within the bucket, so dedup is exact, never probabilistic.
//   * compression — pages evicted from the hot working set (LRU beyond
//     `hot_page_budget`, and only once the store holds the last reference)
//     are kept as PackBits-style RLE images.  Guest pages are mostly
//     zeros/text, so ratios are large.  A later fetch() inflates lazily.
//   * disk tier — with `disk_dir` set, every interned page is also written
//     behind (compress + write-to-temp + rename on a dedicated thread), so
//     a restarted process can rehydrate warm snapshots instead of
//     rebuilding machines.  A missing/corrupt page file simply fails the
//     fetch; callers fall back to building from scratch.
//
// Thread-safe: all public methods may be called from any thread.  Page
// bytes are only ever read (pages are immutable once interned — writers
// clone first because the store's reference keeps use_count > 1), so the
// write-behind thread can compress without holding the index lock.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mem/tainted_memory.hpp"

namespace ptaint::mem {

struct PageStoreConfig {
  /// Canonical pages kept materialized (uncompressed).  Eviction beyond
  /// the budget compresses least-recently-touched pages whose only
  /// remaining reference is the store's.
  size_t hot_page_budget = 1u << 16;
  /// Disk-tier directory; empty = memory-only store.  The directory is
  /// created if missing; page files found in it at construction are
  /// registered (a restarted daemon's warm state).
  std::string disk_dir;
};

class PageStore {
 public:
  using Page = TaintedMemory::Page;
  using Config = PageStoreConfig;

  /// Bytes of page content covered by the hash and the codec: data plane,
  /// taint bitmap, aprov nibbles (summaries are derived, not stored).
  static constexpr size_t kPlaneBytes =
      sizeof(Page{}.data) + sizeof(Page{}.taint) + sizeof(Page{}.aprov);

  /// Stable content address of an interned page.  `slot` disambiguates
  /// full-hash collisions (almost always 0) and is stable across restarts
  /// because it is part of the on-disk file name.
  struct Key {
    uint64_t hash = 0;
    uint32_t slot = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return static_cast<size_t>(k.hash ^ (k.hash >> 32) ^ k.slot);
    }
  };

  struct Stats {
    uint64_t canonical_pages = 0;   // distinct page contents interned
    uint64_t interned_refs = 0;     // intern() calls (logical pages)
    uint64_t dedup_hits = 0;        // of those, served by existing content
    uint64_t hot_pages = 0;         // currently materialized
    uint64_t compressed_pages = 0;  // with an in-memory compressed image
    uint64_t disk_pages = 0;        // durable in the disk tier
    uint64_t uncompressed_bytes = 0;  // kPlaneBytes per compressed page
    uint64_t compressed_bytes = 0;    // their RLE image sizes
    uint64_t evictions = 0;       // hot blocks dropped to compressed-only
    uint64_t decompressions = 0;  // fetches served by inflating
    uint64_t disk_reads = 0;      // fetches that had to touch a page file
    uint64_t disk_writes = 0;     // page/blob files made durable
  };

  explicit PageStore(Config config = {});
  ~PageStore();  // drains the write-behind queue

  PageStore(const PageStore&) = delete;
  PageStore& operator=(const PageStore&) = delete;

  /// Interns `page` by content: returns the canonical block for that
  /// content (which is `page` itself the first time) and its key, and
  /// takes one pin on the key.  With a disk tier, new content is queued
  /// for write-behind.  May evict cold pages beyond the hot budget.
  std::pair<std::shared_ptr<Page>, Key> intern(std::shared_ptr<Page> page);

  /// Materializes the page for `key`: the hot block, else inflate the
  /// compressed image, else read + inflate the disk tier's page file.
  /// Returns nullptr when the key is unknown or its page file is
  /// missing/corrupt (callers rebuild from scratch).  Does not pin.
  std::shared_ptr<Page> fetch(const Key& key);

  /// Takes one pin on an existing key (adopting refs found in an on-disk
  /// snapshot blob).  Returns false when the key is unknown.
  bool pin(const Key& key);

  /// Drops one pin.  Unpinned content stays interned (it still serves
  /// dedup) but its slot becomes reclaimable by evict.
  void release(const Key& key);

  /// Compresses + drops materialized pages beyond the hot budget, coldest
  /// first, skipping pages still shared with a live snapshot.  Called
  /// internally by intern(); public for benches/tests that model memory
  /// pressure directly.
  void evict_cold();

  /// Drops every droppable materialized block and, when `compressed_images`
  /// and the disk tier is on, the in-memory compressed images too — a
  /// bench/test hook to force the next fetch through a chosen tier.
  void drop_caches(bool compressed_images);

  /// Queues an opaque blob for durable write-behind into the disk tier
  /// (`<disk_dir>/<name>`).  Ordered after everything already queued, so a
  /// snapshot blob queued after its pages' interns lands after them.
  /// No-op without a disk tier.
  void queue_blob(const std::string& name, std::vector<uint8_t> bytes);

  /// Blocks until the write-behind queue is drained and durable.
  void flush();

  Stats stats() const;
  const Config& config() const { return config_; }

  /// FNV-1a 64 over the three content planes.
  static uint64_t hash_page(const Page& page);

  /// PackBits-style RLE over the concatenated planes.  decompress_page
  /// recomputes the summaries; returns nullptr on a corrupt image.
  static std::vector<uint8_t> compress_page(const Page& page);
  static std::shared_ptr<Page> decompress_page(const uint8_t* data,
                                               size_t size);

 private:
  struct Slot {
    bool present = false;           // slot id is used (files create gaps)
    std::shared_ptr<Page> hot;      // materialized canonical block
    std::vector<uint8_t> compressed;  // RLE image ("" = not compressed yet)
    uint64_t pins = 0;
    uint64_t last_touch = 0;
    bool on_disk = false;   // page file durable (or known from startup scan)
    bool queued = false;    // write-behind in flight
  };

  struct PendingWrite {
    std::string name;              // file name within disk_dir
    std::shared_ptr<Page> page;    // page write: compress then persist
    std::vector<uint8_t> bytes;    // blob write: persist as-is
    Key key;                       // page writes: slot to mark on_disk
  };

  Slot* find_slot(const Key& key);
  void evict_cold_locked(std::unique_lock<std::mutex>& lock);
  void writer_main();
  std::shared_ptr<Page> load_from_disk(const Key& key);

  Config config_;
  mutable std::mutex mutex_;
  std::unordered_map<uint64_t, std::vector<Slot>> index_;
  uint64_t tick_ = 0;
  size_t hot_count_ = 0;
  Stats stats_;

  std::mutex write_mutex_;
  std::condition_variable write_cv_;
  std::deque<PendingWrite> write_queue_;
  size_t writes_in_flight_ = 0;
  bool write_stop_ = false;
  std::thread writer_;
};

/// Interns every page of `memory` into `store`, swapping each block for
/// its canonical duplicate, and returns the (page index, key) list
/// describing the image.  The caller owns one store pin per entry.
std::vector<std::pair<uint32_t, PageStore::Key>> intern_memory(
    PageStore& store, TaintedMemory& memory);

/// Rebuilds `memory` from store-resident pages — the inverse of
/// intern_memory.  Does not pin.  Returns false (leaving `memory` in an
/// unspecified but valid state) when any page cannot be fetched.
bool adopt_memory(PageStore& store, TaintedMemory& memory,
                  const std::vector<std::pair<uint32_t, PageStore::Key>>& refs);

}  // namespace ptaint::mem
