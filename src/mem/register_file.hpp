// Register file extended with per-byte taintedness (Section 4.2).
//
// $zero is hardwired: writes to it are ignored and it is never tainted.
// HI/LO (multiply/divide results) carry taint the same way.
#pragma once

#include <array>

#include "isa/isa.hpp"
#include "mem/taint.hpp"

namespace ptaint::mem {

class RegisterFile {
 public:
  TaintedWord get(uint8_t reg) const { return regs_[reg & 31]; }

  void set(uint8_t reg, TaintedWord w) {
    if ((reg & 31) != 0) regs_[reg & 31] = w;
  }

  /// Clears only the data-taint bits of a register, preserving the value.
  /// This is the in-place untainting side effect of compare instructions
  /// (Table 1).  Address provenance is sticky through compares: validating
  /// an address's value does not stop it being an address.
  void untaint(uint8_t reg) {
    regs_[reg & 31].taint &= static_cast<TaintBits>(~kDataMask);
  }

  TaintedWord hi() const { return hi_; }
  TaintedWord lo() const { return lo_; }
  void set_hi(TaintedWord w) { hi_ = w; }
  void set_lo(TaintedWord w) { lo_ = w; }

  /// Number of registers (any byte) currently tainted, for diagnostics.
  int tainted_reg_count() const {
    int n = 0;
    for (const auto& r : regs_) n += r.tainted() ? 1 : 0;
    return n;
  }

  /// Flat slot array for the JIT tier: 32 contiguous TaintedWords, slot 0 =
  /// $zero.  Emitted code addresses slot i at byte offset 8*i, reading the
  /// value dword at +0 and the taint word at +4 (the two trailing padding
  /// bytes are never read).  Writers must preserve the $zero invariant —
  /// the JIT never emits a store to slot 0, matching set()'s guard.
  TaintedWord* flat_slots() { return regs_.data(); }

 private:
  std::array<TaintedWord, isa::kNumRegs> regs_{};
  TaintedWord hi_{};
  TaintedWord lo_{};
};

}  // namespace ptaint::mem
