#include "mem/cache.hpp"

#include <cassert>
#include <cstddef>

namespace ptaint::mem {

Cache::Cache(CacheConfig config) : config_(config) {
  assert(config_.line_bytes > 0 && config_.ways > 0);
  num_sets_ = config_.size_bytes / (config_.line_bytes * config_.ways);
  assert(num_sets_ > 0 && (num_sets_ & (num_sets_ - 1)) == 0 &&
         "set count must be a power of two");
  lines_.resize(static_cast<size_t>(num_sets_) * config_.ways);
}

uint32_t Cache::access(uint32_t addr, bool is_write) {
  (void)is_write;  // write-allocate, write-back: same placement policy
  ++tick_;
  ++stats_.accesses;
  const uint32_t line_addr = addr / config_.line_bytes;
  const uint32_t set = line_addr & (num_sets_ - 1);
  const uint32_t tag = line_addr / num_sets_;
  Line* base = &lines_[static_cast<size_t>(set) * config_.ways];

  Line* victim = base;
  for (uint32_t w = 0; w < config_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      ++stats_.hits;
      line.lru = tick_;
      return config_.hit_latency;
    }
    if (!line.valid) {
      victim = &line;
    } else if (victim->valid && line.lru < victim->lru) {
      victim = &line;
    }
  }
  ++stats_.misses;
  victim->valid = true;
  victim->tag = tag;
  victim->lru = tick_;
  return config_.hit_latency + config_.miss_penalty;
}

uint64_t Cache::data_bits() const {
  return static_cast<uint64_t>(config_.size_bytes) * 8;
}

uint64_t Cache::taint_bits() const {
  return config_.taint_extension ? config_.size_bytes : 0;  // 1 bit per byte
}

}  // namespace ptaint::mem
