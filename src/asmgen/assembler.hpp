// Two-pass assembler for PTA-32.
//
// The guest runtime (libc, heap, printf) and every guest application in this
// repository are written in this assembly dialect, which is deliberately
// close to classic MIPS gas syntax:
//
//   .text / .data            segment selection
//   .word/.half/.byte e,...  data emission (expressions allowed)
//   .ascii/.asciiz "s"       strings with C escapes
//   .space N                 N zero bytes
//   .align N                 align to 2^N
//   .org ADDR                place the location counter at an absolute
//                            address (forward only; gap is zero-filled) —
//                            used to pin globals at paper-matching addresses
//   .equ NAME, EXPR          assemble-time constant
//   .globl NAME              accepted, no-op (single link unit)
//
// Pseudo-instructions expand to fixed sequences chosen to have the same
// taint-propagation behaviour real compilers emit (e.g. blt expands to
// slt+bne, which exercises the paper's compare-untaints rule):
//   li, la, move, nop, not, neg, b, beqz, bnez, blt/bgt/ble/bge[u],
//   mul/div/rem (3-operand), push, pop, lw/sw with a bare label.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "isa/isa.hpp"

namespace ptaint::asmgen {

struct SourceLoc {
  std::string file;
  int line = 0;
  int col = 0;  // 1-based; 0 when no column information is available
};

/// One named assembly source ("translation unit"); units are concatenated
/// into a single program with a shared symbol table.
struct Source {
  std::string name;
  std::string text;
};

/// Assembled program image.
struct Program {
  std::vector<uint32_t> text;   // instruction words, loaded at kTextBase
  std::vector<uint8_t> data;    // data segment image, loaded at kDataBase
  uint32_t entry = 0;           // `_start` if defined, else first text word
  uint32_t data_end = 0;        // first address past .data (initial brk)
  std::map<std::string, uint32_t> symbols;
  std::map<uint32_t, SourceLoc> text_locs;       // text addr -> source line
  std::vector<std::pair<uint32_t, std::string>> text_labels;  // sorted
  /// Labels that are functions: jal targets plus _start/main.  Local jump
  /// labels inside a function body are excluded, so alert attribution maps
  /// a PC to the enclosing function the way the paper's transcripts do.
  std::vector<std::pair<uint32_t, std::string>> function_labels;  // sorted

  /// Name of the function (nearest preceding function label) containing
  /// `pc`; falls back to the nearest text label of any kind.
  std::string symbol_for(uint32_t pc) const;
};

/// Thrown when assembly fails; `what()` lists every diagnostic, one per
/// line, in the format
///
///   file:line:col: message [near 'token']
///
/// where `col` is the 1-based column of the offending operand (or of the
/// mnemonic when the statement as a whole is at fault) and `token` is the
/// offending source token.
class AssemblyError : public std::runtime_error {
 public:
  explicit AssemblyError(std::string message)
      : std::runtime_error(std::move(message)) {}
};

/// Assembles the concatenation of `sources`.  Throws AssemblyError.
Program assemble(const std::vector<Source>& sources);

/// Convenience for a single anonymous unit (tests, examples).
Program assemble(std::string_view text, std::string name = "<input>");

/// Human-readable listing of the text segment: address, encoded word and
/// disassembly, with label lines interleaved.  `ptaint-run --listing`
/// prints this.
std::string listing(const Program& program);

}  // namespace ptaint::asmgen
