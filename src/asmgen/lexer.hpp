// Line-oriented lexer for the PTA-32 assembly dialect.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ptaint::asmgen {

/// One source line reduced to structural pieces.  A line can carry any
/// number of leading `name:` labels followed by at most one statement.
struct Line {
  std::vector<std::string> labels;
  std::string mnemonic;                // lower-cased; empty if labels only
  std::vector<std::string> operands;   // split on top-level commas, trimmed
  int line_no = 0;

  // 1-based source columns, for diagnostics: where the mnemonic starts and
  // where each operand starts (parallel to `operands`).
  int mnemonic_col = 1;
  std::vector<int> operand_cols;

  /// Column of operand `i`, falling back to the mnemonic for synthesized
  /// lines that carry no per-operand positions.
  int col_of_operand(size_t i) const {
    return i < operand_cols.size() ? operand_cols[i] : mnemonic_col;
  }
};

/// Splits source text into structural lines.  Strips `#` comments (except
/// inside string literals).  Blank lines are dropped.
std::vector<Line> lex(std::string_view text);

/// Parses an integer literal: decimal, 0x hex, -negative, or 'c' char with
/// C escapes.  Returns nullopt when `s` is not a literal.
std::optional<int64_t> parse_int(std::string_view s);

/// Decodes a double-quoted string literal with C escapes (\n \t \r \0 \\ \"
/// \xHH).  Returns nullopt on malformed input.
std::optional<std::string> parse_string_literal(std::string_view s);

}  // namespace ptaint::asmgen
