#include "asmgen/lexer.hpp"

#include <cctype>

namespace ptaint::asmgen {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

// Strips a trailing # comment, respecting quotes.
std::string_view strip_comment(std::string_view line) {
  bool in_string = false;
  bool in_char = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (c == '\\' && (in_string || in_char)) {
      ++i;
      continue;
    }
    if (c == '"' && !in_char) in_string = !in_string;
    if (c == '\'' && !in_string) in_char = !in_char;
    if (c == '#' && !in_string && !in_char) return line.substr(0, i);
  }
  return line;
}

// Splits operands on commas that are outside quotes and parentheses.
// `base_col` is the 1-based column of s[0]; each piece's start column is
// appended to `cols` (parallel to the returned vector).
std::vector<std::string> split_operands(std::string_view s, int base_col,
                                        std::vector<int>& cols) {
  std::vector<std::string> out;
  bool in_string = false;
  bool in_char = false;
  int depth = 0;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i < s.size()) {
      char c = s[i];
      if (c == '\\' && (in_string || in_char)) {
        ++i;
        continue;
      }
      if (c == '"' && !in_char) in_string = !in_string;
      else if (c == '\'' && !in_string) in_char = !in_char;
      else if (!in_string && !in_char) {
        if (c == '(') ++depth;
        else if (c == ')') --depth;
      }
      if (!(c == ',' && !in_string && !in_char && depth == 0)) continue;
    }
    auto piece = trim(s.substr(start, i - start));
    if (!piece.empty()) {
      out.emplace_back(piece);
      cols.push_back(base_col + static_cast<int>(piece.data() - s.data()));
    }
    start = i + 1;
  }
  return out;
}

std::optional<int> decode_escape(char c) {
  switch (c) {
    case 'n': return '\n';
    case 't': return '\t';
    case 'r': return '\r';
    case '0': return '\0';
    case '\\': return '\\';
    case '"': return '"';
    case '\'': return '\'';
    case 'a': return '\a';
    case 'b': return '\b';
    case 'f': return '\f';
    case 'v': return '\v';
    default: return std::nullopt;
  }
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::vector<Line> lex(std::string_view text) {
  std::vector<Line> lines;
  int line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    ++line_no;
    const std::string_view orig = text.substr(pos, eol - pos);
    std::string_view raw = trim(strip_comment(orig));
    pos = eol + 1;
    if (raw.empty()) continue;
    // raw stays a subview of orig throughout, so 1-based columns are just
    // pointer offsets into the original line.
    auto col_of = [&](std::string_view piece) {
      return static_cast<int>(piece.data() - orig.data()) + 1;
    };

    Line line;
    line.line_no = line_no;
    // Peel leading labels:  name:
    for (;;) {
      size_t colon = std::string_view::npos;
      bool in_string = false, in_char = false;
      for (size_t i = 0; i < raw.size(); ++i) {
        char c = raw[i];
        if (c == '\\' && (in_string || in_char)) { ++i; continue; }
        if (c == '"' && !in_char) in_string = !in_string;
        if (c == '\'' && !in_string) in_char = !in_char;
        if (in_string || in_char) continue;
        if (std::isspace(static_cast<unsigned char>(c))) break;  // word ended
        if (c == ':') { colon = i; break; }
      }
      if (colon == std::string_view::npos) break;
      line.labels.emplace_back(trim(raw.substr(0, colon)));
      raw = trim(raw.substr(colon + 1));
      if (raw.empty()) break;
    }
    if (!raw.empty()) {
      size_t sp = 0;
      while (sp < raw.size() && !std::isspace(static_cast<unsigned char>(raw[sp]))) {
        ++sp;
      }
      line.mnemonic = to_lower(raw.substr(0, sp));
      line.mnemonic_col = col_of(raw);
      const std::string_view rest = trim(raw.substr(sp));
      line.operands = split_operands(rest, rest.empty() ? 1 : col_of(rest),
                                     line.operand_cols);
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

std::optional<int64_t> parse_int(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  // Char literal.
  if (s.front() == '\'') {
    if (s.size() >= 3 && s.back() == '\'') {
      std::string_view body = s.substr(1, s.size() - 2);
      if (body.size() == 1) return static_cast<unsigned char>(body[0]);
      if (body.size() == 2 && body[0] == '\\') {
        if (auto e = decode_escape(body[1])) return *e;
      }
    }
    return std::nullopt;
  }
  bool negative = false;
  if (s.front() == '-' || s.front() == '+') {
    negative = s.front() == '-';
    s.remove_prefix(1);
    if (s.empty()) return std::nullopt;
  }
  int base = 10;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    base = 16;
    s.remove_prefix(2);
    if (s.empty()) return std::nullopt;
  }
  int64_t value = 0;
  for (char c : s) {
    int d = hex_digit(c);
    if (d < 0 || d >= base) return std::nullopt;
    value = value * base + d;
    if (value > int64_t{0x1'0000'0000}) return std::nullopt;  // overflow guard
  }
  return negative ? -value : value;
}

std::optional<std::string> parse_string_literal(std::string_view s) {
  s = trim(s);
  if (s.size() < 2 || s.front() != '"' || s.back() != '"') return std::nullopt;
  std::string out;
  for (size_t i = 1; i + 1 < s.size(); ++i) {
    char c = s[i];
    if (c != '\\') {
      out.push_back(c);
      continue;
    }
    ++i;
    if (i + 1 >= s.size() + 1) return std::nullopt;
    char e = s[i];
    if (e == 'x') {
      int hi = i + 1 < s.size() ? hex_digit(s[i + 1]) : -1;
      int lo = i + 2 < s.size() ? hex_digit(s[i + 2]) : -1;
      if (hi < 0 || lo < 0) return std::nullopt;
      out.push_back(static_cast<char>(hi * 16 + lo));
      i += 2;
      continue;
    }
    auto d = decode_escape(e);
    if (!d) return std::nullopt;
    out.push_back(static_cast<char>(*d));
  }
  return out;
}

}  // namespace ptaint::asmgen
