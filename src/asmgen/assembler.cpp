#include "asmgen/assembler.hpp"

#include <algorithm>
#include <cassert>
#include <set>
#include <sstream>

#include "asmgen/lexer.hpp"

namespace ptaint::asmgen {
namespace {

using isa::Instruction;
using isa::Op;
namespace layout = isa::layout;

/// How a pending instruction's immediate is patched once symbols resolve.
enum class Fixup : uint8_t {
  kNone,
  kBranch,    // imm <- (value - (pc + 4)) >> 2
  kJump,      // target <- value
  kAbsHi,     // imm <- value >> 16            (la: lui)
  kAbsLo,     // imm <- value & 0xffff         (la: ori)
  kSignedHi,  // imm <- (value + 0x8000) >> 16 (lw label: lui)
  kSignedLo,  // imm <- sign-adjusted low half (lw label: mem offset)
};

struct PendingInst {
  Instruction inst;
  Fixup fixup = Fixup::kNone;
  std::string symbol;   // expression base symbol (may be empty: pure value)
  int64_t addend = 0;   // expression addend, or resolved pure value
  SourceLoc loc;
};

struct Diag {
  SourceLoc loc;
  std::string message;
  std::string token;  // offending source token, when identifiable
};

// An operand expression is `sym`, `sym+N`, `sym-N`, or a literal.
struct Expr {
  std::string symbol;  // empty for a pure literal
  int64_t addend = 0;
};

class Assembler {
 public:
  Program run(const std::vector<Source>& sources) {
    for (int pass = 1; pass <= 2; ++pass) {
      pass_ = pass;
      text_pc_ = layout::kTextBase;
      data_pc_ = layout::kDataBase;
      in_text_ = true;
      for (const auto& src : sources) {
        file_ = src.name;
        for (const Line& line : lex(src.text)) {
          line_no_ = line.line_no;
          process(line);
        }
      }
      if (!diags_.empty()) fail();
    }
    resolve_fixups();
    if (!diags_.empty()) fail();

    Program prog;
    for (const auto& p : pending_) prog.text.push_back(isa::encode(p.inst));
    prog.data = std::move(data_);
    prog.symbols = symbols_;
    prog.data_end = data_pc_;
    prog.entry = symbols_.count("_start") ? symbols_.at("_start")
                                          : layout::kTextBase;
    for (uint32_t i = 0; i < pending_.size(); ++i) {
      prog.text_locs[layout::kTextBase + 4 * i] = pending_[i].loc;
    }
    prog.text_labels = text_labels_;
    std::sort(prog.text_labels.begin(), prog.text_labels.end());
    // Functions = jal targets (+ the conventional entry points).
    std::set<std::string> fn_names;
    for (const auto& p : pending_) {
      if (p.inst.op == Op::kJal && !p.symbol.empty()) fn_names.insert(p.symbol);
    }
    fn_names.insert("_start");
    fn_names.insert("main");
    for (const auto& [addr, name] : prog.text_labels) {
      if (fn_names.count(name)) prog.function_labels.emplace_back(addr, name);
    }
    return prog;
  }

 private:
  // ---- diagnostics ----
  // Statement-level error, anchored at the mnemonic of the current line.
  void error(std::string message) {
    diags_.push_back({here(), std::move(message),
                      cur_line_ ? cur_line_->mnemonic : ""});
  }

  // Operand-level error.  `operand` must be a reference into the current
  // line's operand vector; its source column is recovered by identity so
  // every helper can report precise positions without threading indices.
  void error_at(const std::string& operand, std::string message) {
    SourceLoc loc = here();
    if (cur_line_ != nullptr) {
      for (size_t i = 0; i < cur_line_->operands.size(); ++i) {
        if (&cur_line_->operands[i] == &operand) {
          loc.col = cur_line_->col_of_operand(i);
          break;
        }
      }
    }
    diags_.push_back({std::move(loc), std::move(message), operand});
  }

  [[noreturn]] void fail() {
    std::ostringstream os;
    size_t shown = 0;
    for (const auto& d : diags_) {
      if (shown++ == 20) {
        os << "... (" << diags_.size() - 20 << " more)\n";
        break;
      }
      os << d.loc.file << ":" << d.loc.line << ":" << d.loc.col << ": "
         << d.message;
      if (!d.token.empty()) os << " [near '" << d.token << "']";
      os << "\n";
    }
    throw AssemblyError(os.str());
  }

  SourceLoc here() const {
    return {file_, line_no_, cur_line_ ? cur_line_->mnemonic_col : 0};
  }

  // ---- symbol/expression handling ----
  std::optional<Expr> parse_expr(std::string_view s) const {
    if (auto v = parse_int(s)) return Expr{"", *v};
    size_t split = std::string_view::npos;
    for (size_t i = 1; i < s.size(); ++i) {
      if (s[i] == '+' || s[i] == '-') split = i;
    }
    std::string_view base = s, rest;
    int64_t addend = 0;
    if (split != std::string_view::npos) {
      base = s.substr(0, split);
      rest = s.substr(split);  // includes sign
      auto v = parse_int(rest);
      if (!v) return std::nullopt;
      addend = *v;
    }
    if (base.empty()) return std::nullopt;
    for (char c : base) {
      if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
            c == '.')) {
        return std::nullopt;
      }
    }
    return Expr{std::string(base), addend};
  }

  // Resolves an expression, if possible right now.  Constants (.equ) are
  // available in both passes; labels only reliably in pass 2.
  std::optional<int64_t> eval(const Expr& e) const {
    if (e.symbol.empty()) return e.addend;
    auto it = symbols_.find(e.symbol);
    if (it == symbols_.end()) return std::nullopt;
    return static_cast<int64_t>(it->second) + e.addend;
  }

  void define_symbol(const std::string& name, uint32_t value) {
    if (pass_ == 1) {
      if (!symbols_.emplace(name, value).second) {
        error("duplicate symbol '" + name + "'");
      }
    } else {
      // Pass 2 sanity: the two passes must agree on layout.
      [[maybe_unused]] auto it = symbols_.find(name);
      assert(it != symbols_.end() && it->second == value &&
             "pass 1 / pass 2 layout divergence");
    }
  }

  // ---- emission ----
  void emit(Instruction inst, Fixup fixup = Fixup::kNone, Expr expr = Expr()) {
    if (pass_ == 2) {
      PendingInst p;
      p.inst = inst;
      p.fixup = fixup;
      p.symbol = expr.symbol;
      p.addend = expr.addend;
      p.loc = here();
      p.loc.line = line_no_;
      pending_.push_back(std::move(p));
    }
    text_pc_ += 4;
  }

  void emit_r(Op op, uint8_t rd, uint8_t rs, uint8_t rt, uint8_t shamt = 0) {
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.rs = rs;
    i.rt = rt;
    i.shamt = shamt;
    emit(i);
  }

  void emit_i(Op op, uint8_t rt, uint8_t rs, int32_t imm,
              Fixup fixup = Fixup::kNone, Expr expr = Expr()) {
    Instruction i;
    i.op = op;
    i.rt = rt;
    i.rs = rs;
    i.imm = imm;
    emit(i, fixup, expr);
  }

  void data_put(uint8_t byte) {
    if (pass_ == 2) {
      size_t off = data_pc_ - layout::kDataBase;
      if (data_.size() <= off) data_.resize(off + 1, 0);
      data_[off] = byte;
    }
    ++data_pc_;
  }

  // ---- operand parsing helpers ----
  std::optional<uint8_t> reg(const std::string& s) {
    auto r = isa::parse_reg(s);
    if (!r) error_at(s, "expected register");
    return r;
  }

  // `off(reg)`, `(reg)` or bare `reg` memory operand.
  struct MemOperand {
    uint8_t base = 0;
    int32_t offset = 0;
    bool ok = false;
  };

  std::optional<MemOperand> parse_mem(const std::string& s) {
    size_t open = s.find('(');
    if (open == std::string::npos || s.back() != ')') return std::nullopt;
    std::string off_str = s.substr(0, open);
    std::string reg_str = s.substr(open + 1, s.size() - open - 2);
    auto base = isa::parse_reg(reg_str);
    if (!base) return std::nullopt;
    int64_t off = 0;
    if (!off_str.empty()) {
      auto expr = parse_expr(off_str);
      if (!expr) return std::nullopt;
      auto v = eval(*expr);
      if (!v) {
        if (pass_ == 2) error_at(s, "unresolved offset '" + off_str + "'");
        v = 0;
      }
      off = *v;
    }
    if (off < -32768 || off > 32767) {
      error_at(s, "memory offset out of 16-bit range");
      off = 0;
    }
    MemOperand m;
    m.base = *base;
    m.offset = static_cast<int32_t>(off);
    m.ok = true;
    return m;
  }

  // ---- statement processing ----
  void process(const Line& line) {
    cur_line_ = &line;
    for (const auto& label : line.labels) {
      uint32_t addr = in_text_ ? text_pc_ : data_pc_;
      define_symbol(label, addr);
      if (in_text_ && pass_ == 1) text_labels_.emplace_back(addr, label);
    }
    if (line.mnemonic.empty()) return;
    if (line.mnemonic[0] == '.') {
      directive(line);
      return;
    }
    if (!in_text_) {
      error("instruction outside .text");
      return;
    }
    instruction(line);
    cur_line_ = nullptr;
  }

  void directive(const Line& line) {
    const std::string& d = line.mnemonic;
    const auto& ops = line.operands;
    if (d == ".text") { in_text_ = true; return; }
    if (d == ".data") { in_text_ = false; return; }
    if (d == ".globl" || d == ".global" || d == ".ent" || d == ".end") return;
    if (d == ".equ" || d == ".set") {
      if (ops.size() != 2) { error(d + " needs NAME, EXPR"); return; }
      auto expr = parse_expr(ops[1]);
      auto v = expr ? eval(*expr) : std::nullopt;
      if (!v) { error_at(ops[1], "cannot evaluate " + d + " expression"); return; }
      define_symbol(ops[0], static_cast<uint32_t>(*v));
      return;
    }
    if (in_text_ && d != ".align") {
      error("data directive '" + d + "' in .text");
      return;
    }
    if (d == ".word" || d == ".half" || d == ".byte") {
      int width = d == ".word" ? 4 : d == ".half" ? 2 : 1;
      for (const auto& op : ops) {
        auto expr = parse_expr(op);
        auto v = expr ? eval(*expr) : std::nullopt;
        if (!v && pass_ == 2) error_at(op, "unresolved expression");
        uint32_t value = static_cast<uint32_t>(v.value_or(0));
        for (int i = 0; i < width; ++i) {
          data_put(static_cast<uint8_t>(value >> (8 * i)));
        }
      }
      return;
    }
    if (d == ".ascii" || d == ".asciiz") {
      if (ops.size() != 1) { error(d + " needs one string"); return; }
      auto s = parse_string_literal(ops[0]);
      if (!s) { error_at(ops[0], "malformed string literal"); return; }
      for (char c : *s) data_put(static_cast<uint8_t>(c));
      if (d == ".asciiz") data_put(0);
      return;
    }
    if (d == ".space") {
      auto v = ops.size() == 1 ? parse_int(ops[0]) : std::nullopt;
      if (!v || *v < 0) { error(".space needs a non-negative count"); return; }
      for (int64_t i = 0; i < *v; ++i) data_put(0);
      return;
    }
    if (d == ".align") {
      auto v = ops.size() == 1 ? parse_int(ops[0]) : std::nullopt;
      if (!v || *v < 0 || *v > 12) { error(".align needs 0..12"); return; }
      uint32_t align = 1u << *v;
      uint32_t& pc = in_text_ ? text_pc_ : data_pc_;
      while (pc % align != 0) {
        if (in_text_) {
          emit_r(Op::kSll, 0, 0, 0);  // nop padding
        } else {
          data_put(0);
        }
      }
      return;
    }
    if (d == ".org") {
      auto expr = ops.size() == 1 ? parse_expr(ops[0]) : std::nullopt;
      auto v = expr ? eval(*expr) : std::nullopt;
      if (!v) { error(".org needs an absolute address"); return; }
      if (in_text_) { error(".org is only supported in .data"); return; }
      if (static_cast<uint32_t>(*v) < data_pc_) {
        error(".org cannot move backwards");
        return;
      }
      while (data_pc_ < static_cast<uint32_t>(*v)) data_put(0);
      return;
    }
    error("unknown directive '" + d + "'");
  }

  // Emits `li` and returns its size-determining expansion.
  void emit_li(uint8_t rd, int64_t value) {
    const auto v32 = static_cast<uint32_t>(value);
    if (value >= -32768 && value <= 32767) {
      emit_i(Op::kAddiu, rd, isa::kZero, static_cast<int32_t>(value));
    } else if ((v32 & 0xffff0000u) == 0) {
      emit_i(Op::kOri, rd, isa::kZero, static_cast<int32_t>(v32));
    } else {
      emit_i(Op::kLui, rd, 0, static_cast<int32_t>(v32 >> 16));
      if ((v32 & 0xffffu) != 0) {
        emit_i(Op::kOri, rd, rd, static_cast<int32_t>(v32 & 0xffffu));
      }
    }
  }

  void branch_expr(Op op, uint8_t rs, uint8_t rt, const std::string& target) {
    auto expr = parse_expr(target);
    if (!expr) { error_at(target, "bad branch target"); return; }
    Instruction i;
    i.op = op;
    i.rs = rs;
    i.rt = rt;
    emit(i, Fixup::kBranch, *expr);
  }

  void instruction(const Line& line) {
    const std::string& m = line.mnemonic;
    const auto& ops = line.operands;
    auto need = [&](size_t n) {
      if (ops.size() != n) {
        error("'" + m + "' expects " + std::to_string(n) + " operands");
        return false;
      }
      return true;
    };

    // ---- pseudo-instructions ----
    if (m == "nop") { emit_r(Op::kSll, 0, 0, 0); return; }
    if (m == "li") {
      if (!need(2)) return;
      auto rd = reg(ops[0]);
      auto expr = parse_expr(ops[1]);
      auto v = expr ? eval(*expr) : std::nullopt;
      if (!rd) return;
      if (!v) { error_at(ops[1], "li needs a constant known at this point"); return; }
      emit_li(*rd, *v);
      return;
    }
    if (m == "la") {
      if (!need(2)) return;
      auto rd = reg(ops[0]);
      auto expr = parse_expr(ops[1]);
      if (!rd) return;
      if (!expr) { error_at(ops[1], "la needs REG, SYMBOL[+OFF]"); return; }
      emit_i(Op::kLui, *rd, 0, 0, Fixup::kAbsHi, *expr);
      emit_i(Op::kOri, *rd, *rd, 0, Fixup::kAbsLo, *expr);
      return;
    }
    if (m == "move") {
      if (!need(2)) return;
      auto rd = reg(ops[0]), rs = reg(ops[1]);
      if (rd && rs) emit_r(Op::kAddu, *rd, *rs, isa::kZero);
      return;
    }
    if (m == "not") {
      if (!need(2)) return;
      auto rd = reg(ops[0]), rs = reg(ops[1]);
      if (rd && rs) emit_r(Op::kNor, *rd, *rs, isa::kZero);
      return;
    }
    if (m == "neg" || m == "negu") {
      if (!need(2)) return;
      auto rd = reg(ops[0]), rs = reg(ops[1]);
      if (rd && rs) emit_r(Op::kSubu, *rd, isa::kZero, *rs);
      return;
    }
    if (m == "b") {
      if (!need(1)) return;
      branch_expr(Op::kBeq, isa::kZero, isa::kZero, ops[0]);
      return;
    }
    if (m == "beqz" || m == "bnez") {
      if (!need(2)) return;
      auto rs = reg(ops[0]);
      if (!rs) return;
      branch_expr(m == "beqz" ? Op::kBeq : Op::kBne, *rs, isa::kZero, ops[1]);
      return;
    }
    if (m == "blt" || m == "bge" || m == "bgt" || m == "ble" || m == "bltu" ||
        m == "bgeu" || m == "bgtu" || m == "bleu") {
      if (!need(3)) return;
      const bool unsigned_cmp = m.back() == 'u';
      const std::string body = unsigned_cmp ? m.substr(0, m.size() - 1) : m;
      auto ra = reg(ops[0]);
      if (!ra) return;
      // Second operand: register if $-prefixed, else a constant expression
      // (.equ names allowed).
      std::optional<int64_t> imm;
      if (ops[1].empty() || ops[1][0] != '$') {
        auto expr = parse_expr(ops[1]);
        if (expr) imm = eval(*expr);
      }
      if (imm) {
        // Immediate comparison: slti/sltiu $at against the (possibly
        // adjusted) bound, then branch on the flag.
        int64_t bound = *imm;
        bool taken_if_set = true;
        if (body == "blt") {                 // a < imm
          taken_if_set = true;
        } else if (body == "bge") {          // a >= imm  ==  !(a < imm)
          taken_if_set = false;
        } else if (body == "ble") {          // a <= imm  ==  a < imm+1
          bound += 1;
          taken_if_set = true;
        } else {                             // bgt: a > imm == !(a < imm+1)
          bound += 1;
          taken_if_set = false;
        }
        if (bound < -32768 || bound > 32767) {
          error_at(ops[1], "branch immediate out of range");
          return;
        }
        emit_i(unsigned_cmp ? Op::kSltiu : Op::kSlti, isa::kAt, *ra,
               static_cast<int32_t>(bound));
        branch_expr(taken_if_set ? Op::kBne : Op::kBeq, isa::kAt, isa::kZero,
                    ops[2]);
        return;
      }
      auto rb = reg(ops[1]);
      if (!rb) return;
      uint8_t lhs = *ra, rhs = *rb;
      // bgt a,b == blt b,a ; ble a,b == bge b,a
      if (body == "bgt" || body == "ble") std::swap(lhs, rhs);
      emit_r(unsigned_cmp ? Op::kSltu : Op::kSlt, isa::kAt, lhs, rhs);
      const bool taken_if_set = (body == "blt" || body == "bgt");
      branch_expr(taken_if_set ? Op::kBne : Op::kBeq, isa::kAt, isa::kZero,
                  ops[2]);
      return;
    }
    if (m == "mul") {
      if (!need(3)) return;
      auto rd = reg(ops[0]), rs = reg(ops[1]), rt = reg(ops[2]);
      if (!rd || !rs || !rt) return;
      emit_r(Op::kMult, 0, *rs, *rt);
      emit_r(Op::kMflo, *rd, 0, 0);
      return;
    }
    if ((m == "div" || m == "divu" || m == "rem" || m == "remu") &&
        ops.size() == 3) {
      auto rd = reg(ops[0]), rs = reg(ops[1]), rt = reg(ops[2]);
      if (!rd || !rs || !rt) return;
      emit_r(m == "div" || m == "rem" ? Op::kDiv : Op::kDivu, 0, *rs, *rt);
      emit_r(m.substr(0, 3) == "rem" ? Op::kMfhi : Op::kMflo, *rd, 0, 0);
      return;
    }
    if (m == "push") {
      if (!need(1)) return;
      auto rs = reg(ops[0]);
      if (!rs) return;
      emit_i(Op::kAddiu, isa::kSp, isa::kSp, -4);
      emit_i(Op::kSw, *rs, isa::kSp, 0);
      return;
    }
    if (m == "pop") {
      if (!need(1)) return;
      auto rd = reg(ops[0]);
      if (!rd) return;
      emit_i(Op::kLw, *rd, isa::kSp, 0);
      emit_i(Op::kAddiu, isa::kSp, isa::kSp, 4);
      return;
    }

    auto op = isa::op_from_mnemonic(m);
    if (!op) {
      error("unknown instruction '" + m + "'");
      return;
    }

    switch (*op) {
      case Op::kSll: case Op::kSrl: case Op::kSra: {
        if (!need(3)) return;
        auto rd = reg(ops[0]), rt = reg(ops[1]);
        auto sh = parse_int(ops[2]);
        if (!rd || !rt) return;
        if (!sh || *sh < 0 || *sh > 31) { error_at(ops[2], "bad shift amount"); return; }
        emit_r(*op, *rd, 0, *rt, static_cast<uint8_t>(*sh));
        return;
      }
      case Op::kSllv: case Op::kSrlv: case Op::kSrav: {
        if (!need(3)) return;
        auto rd = reg(ops[0]), rt = reg(ops[1]), rs = reg(ops[2]);
        if (rd && rt && rs) emit_r(*op, *rd, *rs, *rt);
        return;
      }
      case Op::kAdd: case Op::kAddu: case Op::kSub: case Op::kSubu:
      case Op::kAnd: case Op::kOr: case Op::kXor: case Op::kNor:
      case Op::kSlt: case Op::kSltu: {
        if (!need(3)) return;
        auto rd = reg(ops[0]), rs = reg(ops[1]), rt = reg(ops[2]);
        if (rd && rs && rt) emit_r(*op, *rd, *rs, *rt);
        return;
      }
      case Op::kMult: case Op::kMultu: case Op::kDiv: case Op::kDivu: {
        if (!need(2)) return;
        auto rs = reg(ops[0]), rt = reg(ops[1]);
        if (rs && rt) emit_r(*op, 0, *rs, *rt);
        return;
      }
      case Op::kMfhi: case Op::kMflo: {
        if (!need(1)) return;
        auto rd = reg(ops[0]);
        if (rd) emit_r(*op, *rd, 0, 0);
        return;
      }
      case Op::kMthi: case Op::kMtlo: {
        if (!need(1)) return;
        auto rs = reg(ops[0]);
        if (rs) emit_r(*op, 0, *rs, 0);
        return;
      }
      case Op::kJr: {
        if (!need(1)) return;
        auto rs = reg(ops[0]);
        if (rs) emit_r(*op, 0, *rs, 0);
        return;
      }
      case Op::kTaintSet:
      case Op::kTaintClr: {
        if (!need(2)) return;
        auto rd = reg(ops[0]), rs = reg(ops[1]);
        if (rd && rs) emit_r(*op, *rd, *rs, 0);
        return;
      }
      case Op::kJalr: {
        if (ops.size() == 1) {
          auto rs = reg(ops[0]);
          if (rs) emit_r(*op, isa::kRa, *rs, 0);
        } else if (need(2)) {
          auto rd = reg(ops[0]), rs = reg(ops[1]);
          if (rd && rs) emit_r(*op, *rd, *rs, 0);
        }
        return;
      }
      case Op::kSyscall: case Op::kBreak:
        emit_r(*op, 0, 0, 0);
        return;
      case Op::kAddi: case Op::kAddiu: case Op::kSlti: case Op::kSltiu:
      case Op::kAndi: case Op::kOri: case Op::kXori: {
        if (!need(3)) return;
        auto rt = reg(ops[0]), rs = reg(ops[1]);
        auto expr = parse_expr(ops[2]);
        auto v = expr ? eval(*expr) : std::nullopt;
        if (!rt || !rs) return;
        if (!v) { error_at(ops[2], "immediate must be a known constant"); return; }
        if (*v < -32768 || *v > 65535) { error_at(ops[2], "immediate out of range"); return; }
        emit_i(*op, *rt, *rs, static_cast<int32_t>(*v));
        return;
      }
      case Op::kLui: {
        if (!need(2)) return;
        auto rt = reg(ops[0]);
        auto v = parse_int(ops[1]);
        if (!rt) return;
        if (!v || *v < 0 || *v > 0xffff) { error_at(ops[1], "lui needs 0..0xffff"); return; }
        emit_i(*op, *rt, 0, static_cast<int32_t>(*v));
        return;
      }
      case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLbu: case Op::kLhu:
      case Op::kSb: case Op::kSh: case Op::kSw: {
        if (!need(2)) return;
        auto rt = reg(ops[0]);
        if (!rt) return;
        if (auto mem = parse_mem(ops[1])) {
          emit_i(*op, *rt, mem->base, mem->offset);
          return;
        }
        // Bare-label form: expands through $at.
        auto expr = parse_expr(ops[1]);
        if (!expr || expr->symbol.empty()) {
          error_at(ops[1], "bad memory operand");
          return;
        }
        emit_i(Op::kLui, isa::kAt, 0, 0, Fixup::kSignedHi, *expr);
        emit_i(*op, *rt, isa::kAt, 0, Fixup::kSignedLo, *expr);
        return;
      }
      case Op::kBeq: case Op::kBne: {
        if (!need(3)) return;
        auto rs = reg(ops[0]), rt = reg(ops[1]);
        if (rs && rt) branch_expr(*op, *rs, *rt, ops[2]);
        return;
      }
      case Op::kBlez: case Op::kBgtz: case Op::kBltz: case Op::kBgez:
      case Op::kBltzal: case Op::kBgezal: {
        if (!need(2)) return;
        auto rs = reg(ops[0]);
        if (rs) branch_expr(*op, *rs, 0, ops[1]);
        return;
      }
      case Op::kJ: case Op::kJal: {
        if (!need(1)) return;
        auto expr = parse_expr(ops[0]);
        if (!expr) { error_at(ops[0], "bad jump target"); return; }
        Instruction i;
        i.op = *op;
        emit(i, Fixup::kJump, *expr);
        return;
      }
      default:
        error("cannot assemble '" + m + "'");
        return;
    }
  }

  void resolve_fixups() {
    for (uint32_t idx = 0; idx < pending_.size(); ++idx) {
      PendingInst& p = pending_[idx];
      if (p.fixup == Fixup::kNone) continue;
      int64_t value = p.addend;
      if (!p.symbol.empty()) {
        auto it = symbols_.find(p.symbol);
        if (it == symbols_.end()) {
          diags_.push_back({p.loc, "undefined symbol", p.symbol});
          continue;
        }
        value += it->second;
      }
      const uint32_t pc = layout::kTextBase + 4 * idx;
      const auto v32 = static_cast<uint32_t>(value);
      switch (p.fixup) {
        case Fixup::kBranch: {
          int64_t delta = value - (static_cast<int64_t>(pc) + 4);
          if (delta % 4 != 0 || delta < -131072 || delta > 131068) {
            diags_.push_back({p.loc, "branch target out of range", p.symbol});
            continue;
          }
          p.inst.imm = static_cast<int32_t>(delta >> 2);
          break;
        }
        case Fixup::kJump:
          p.inst.target = v32;
          break;
        case Fixup::kAbsHi:
          p.inst.imm = static_cast<int32_t>(v32 >> 16);
          break;
        case Fixup::kAbsLo:
          p.inst.imm = static_cast<int32_t>(v32 & 0xffff);
          break;
        case Fixup::kSignedHi:
          p.inst.imm = static_cast<int32_t>((v32 + 0x8000) >> 16);
          break;
        case Fixup::kSignedLo:
          p.inst.imm = static_cast<int16_t>(v32 & 0xffff);
          break;
        case Fixup::kNone:
          break;
      }
    }
  }

  int pass_ = 1;
  bool in_text_ = true;
  uint32_t text_pc_ = layout::kTextBase;
  uint32_t data_pc_ = layout::kDataBase;
  std::string file_;
  int line_no_ = 0;
  const Line* cur_line_ = nullptr;  // statement being processed (diagnostics)
  std::map<std::string, uint32_t> symbols_;
  std::vector<PendingInst> pending_;
  std::vector<uint8_t> data_;
  std::vector<std::pair<uint32_t, std::string>> text_labels_;
  std::vector<Diag> diags_;
};

}  // namespace

std::string Program::symbol_for(uint32_t pc) const {
  std::string best;
  for (const auto& [addr, name] : function_labels) {
    if (addr > pc) break;
    best = name;
  }
  if (!best.empty()) return best;
  for (const auto& [addr, name] : text_labels) {
    if (addr > pc) break;
    best = name;
  }
  return best;
}

Program assemble(const std::vector<Source>& sources) {
  Assembler as;
  return as.run(sources);
}

Program assemble(std::string_view text, std::string name) {
  return assemble(std::vector<Source>{{std::move(name), std::string(text)}});
}

std::string listing(const Program& program) {
  std::string out;
  size_t label_idx = 0;
  char line[128];
  for (size_t i = 0; i < program.text.size(); ++i) {
    const uint32_t addr =
        isa::layout::kTextBase + 4 * static_cast<uint32_t>(i);
    while (label_idx < program.text_labels.size() &&
           program.text_labels[label_idx].first == addr) {
      out += program.text_labels[label_idx].second + ":\n";
      ++label_idx;
    }
    const uint32_t word = program.text[i];
    std::snprintf(line, sizeof line, "  %08x:  %08x  %s\n", addr, word,
                  isa::disassemble(isa::decode(word), addr).c_str());
    out += line;
  }
  std::snprintf(line, sizeof line,
                "\n.text %zu instructions, .data %zu bytes, entry 0x%x\n",
                program.text.size(), program.data.size(), program.entry);
  out += line;
  return out;
}

}  // namespace ptaint::asmgen
