// Execution tracer: a bounded ring of the most recently retired
// instructions, for alert forensics ("what led up to the tainted
// dereference?") and for the examples' step-by-step narration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "asmgen/assembler.hpp"
#include "isa/isa.hpp"

namespace ptaint::trace {

struct TraceEntry {
  uint32_t pc = 0;
  isa::Instruction inst;
  bool taken = false;   // branch taken
  bool is_mem = false;
  uint32_t ea = 0;      // effective address for memory ops
};

class Tracer {
 public:
  explicit Tracer(size_t capacity = 64);

  void record(const isa::Instruction& inst, uint32_t pc, bool taken,
              bool is_mem, uint32_t ea);

  /// Entries oldest-to-newest (at most `capacity`).
  std::vector<TraceEntry> recent() const;

  /// Total instructions observed (not just the retained window).
  uint64_t total() const { return total_; }
  size_t capacity() const { return ring_.size(); }

  /// Formats the window as disassembly, annotated with the enclosing
  /// guest function when a program is supplied.
  std::string format(const asmgen::Program* program = nullptr) const;

  void clear();

 private:
  std::vector<TraceEntry> ring_;
  size_t next_ = 0;
  size_t count_ = 0;
  uint64_t total_ = 0;
};

}  // namespace ptaint::trace
