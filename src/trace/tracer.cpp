#include "trace/tracer.hpp"

#include <cstdio>

namespace ptaint::trace {

Tracer::Tracer(size_t capacity) : ring_(capacity == 0 ? 1 : capacity) {}

void Tracer::record(const isa::Instruction& inst, uint32_t pc, bool taken,
                    bool is_mem, uint32_t ea) {
  ring_[next_] = {pc, inst, taken, is_mem, ea};
  next_ = (next_ + 1) % ring_.size();
  if (count_ < ring_.size()) ++count_;
  ++total_;
}

std::vector<TraceEntry> Tracer::recent() const {
  std::vector<TraceEntry> out;
  out.reserve(count_);
  const size_t start = (next_ + ring_.size() - count_) % ring_.size();
  for (size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::string Tracer::format(const asmgen::Program* program) const {
  std::string out;
  std::string last_fn;
  for (const TraceEntry& e : recent()) {
    if (program) {
      std::string fn = program->symbol_for(e.pc);
      if (fn != last_fn) {
        out += "<" + fn + ">:\n";
        last_fn = std::move(fn);
      }
    }
    char line[96];
    std::snprintf(line, sizeof line, "  %6x: %s", e.pc,
                  isa::disassemble(e.inst, e.pc).c_str());
    out += line;
    if (e.is_mem) {
      std::snprintf(line, sizeof line, "   [ea=0x%x]", e.ea);
      out += line;
    }
    out += "\n";
  }
  return out;
}

void Tracer::clear() {
  next_ = 0;
  count_ = 0;
  total_ = 0;
}

}  // namespace ptaint::trace
