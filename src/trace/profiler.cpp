#include "trace/profiler.hpp"

#include <algorithm>
#include <cstdio>

namespace ptaint::trace {

Profiler::Profiler(const asmgen::Program& program) : program_(program) {}

void Profiler::record(uint32_t pc) {
  ++total_;
  if (cached_count_ && pc >= cached_begin_ && pc < cached_end_) {
    ++*cached_count_;
    return;
  }
  // Find the enclosing function span in the sorted label list.
  const auto& labels = program_.function_labels;
  uint32_t begin = 0;
  uint32_t end = 0xffffffff;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i].first > pc) {
      end = labels[i].first;
      break;
    }
    begin = labels[i].first;
  }
  cached_begin_ = begin;
  cached_end_ = end;
  cached_count_ = &counts_[begin];
  ++*cached_count_;
}

std::vector<Profiler::Row> Profiler::hottest(size_t max_rows) const {
  std::vector<Row> rows;
  rows.reserve(counts_.size());
  for (const auto& [addr, count] : counts_) {
    Row row;
    row.function = program_.symbol_for(addr);
    if (row.function.empty()) row.function = "<unknown>";
    row.instructions = count;
    row.share = total_ == 0 ? 0.0 : static_cast<double>(count) / total_;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.instructions > b.instructions;
  });
  if (rows.size() > max_rows) rows.resize(max_rows);
  return rows;
}

std::string Profiler::format(size_t max_rows) const {
  std::string out;
  char line[96];
  std::snprintf(line, sizeof line, "%-20s %14s %8s\n", "function",
                "instructions", "share");
  out += line;
  for (const Row& row : hottest(max_rows)) {
    std::snprintf(line, sizeof line, "%-20s %14llu %7.2f%%\n",
                  row.function.c_str(),
                  static_cast<unsigned long long>(row.instructions),
                  100.0 * row.share);
    out += line;
  }
  return out;
}

}  // namespace ptaint::trace
