// Per-function execution profiler (sim-profile style): attributes every
// retired instruction to the enclosing guest function, giving the hot-spot
// breakdown the paper-era SimpleScalar tooling provided.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "asmgen/assembler.hpp"
#include "isa/isa.hpp"

namespace ptaint::trace {

class Profiler {
 public:
  /// The program supplies the function-label map; it must outlive the
  /// profiler.
  explicit Profiler(const asmgen::Program& program);

  void record(uint32_t pc);

  struct Row {
    std::string function;
    uint64_t instructions = 0;
    double share = 0.0;  // of all retired instructions
  };

  /// Rows sorted by instruction count, descending.
  std::vector<Row> hottest(size_t max_rows = 16) const;

  uint64_t total() const { return total_; }

  /// Formats a flat profile table.
  std::string format(size_t max_rows = 16) const;

  /// Drops all counts (machine restore support).
  void reset() {
    counts_.clear();
    total_ = 0;
    cached_begin_ = cached_end_ = 0;
    cached_count_ = nullptr;
  }

 private:
  const asmgen::Program& program_;
  // Counts keyed by function start address (resolved lazily to names).
  std::map<uint32_t, uint64_t> counts_;
  uint64_t total_ = 0;
  // One-entry cache: retirement is strongly local.
  uint32_t cached_begin_ = 0;
  uint32_t cached_end_ = 0;
  uint64_t* cached_count_ = nullptr;
};

}  // namespace ptaint::trace
