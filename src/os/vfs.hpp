// In-memory virtual filesystem for the simulated OS.
//
// Guest programs open and read deterministic in-memory files; everything a
// guest reads through SYS_READ is external input and therefore tainted by
// the syscall layer (paper Section 4.4).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace ptaint::os {

class Vfs {
 public:
  /// Creates/replaces a file.
  void install(const std::string& path, std::vector<uint8_t> contents);
  void install(const std::string& path, const std::string& contents);

  bool exists(const std::string& path) const;
  const std::vector<uint8_t>* contents(const std::string& path) const;

  /// Opens for reading; returns a VFS-level handle or nullopt.
  std::optional<int> open(const std::string& path);
  /// Opens for writing (truncates/creates).
  int open_write(const std::string& path);
  /// Reads up to `len` bytes; empty result means EOF.  Invalid handle: nullopt.
  std::optional<std::vector<uint8_t>> read(int handle, uint32_t len);
  /// Appends to a write handle; returns false on an invalid handle.
  bool write(int handle, std::span<const uint8_t> data);
  void close(int handle);

  /// Plain-data image of the whole VFS for snapshot serialization
  /// (core/snapshot_io.cpp, DESIGN.md §13): the file map plus the open-file
  /// table with its handle order preserved.
  struct Persist {
    struct OpenFile {
      std::string path;
      uint64_t pos = 0;
      bool writable = false;
      bool open = false;
    };
    std::map<std::string, std::vector<uint8_t>> files;
    std::vector<OpenFile> open_files;
  };
  Persist persist() const;
  void restore_persist(const Persist& p);

 private:
  struct OpenFile {
    std::string path;
    size_t pos = 0;
    bool writable = false;
    bool open = false;
  };

  std::map<std::string, std::vector<uint8_t>> files_;
  std::vector<OpenFile> open_files_;
};

}  // namespace ptaint::os
