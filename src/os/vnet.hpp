// Deterministic virtual network.
//
// The paper extends SimpleScalar with socket support so real network servers
// run inside the simulator.  Here, client sessions are scripted: each session
// is a sequence of request chunks the guest receives one per SYS_RECV call
// (so command-at-a-time protocols parse deterministically), and everything
// the guest SYS_SENDs is captured for assertions.  Bytes delivered by RECV
// are external input — the syscall layer taints them.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace ptaint::os {

/// A scripted client connection.
struct ClientSession {
  std::vector<std::vector<uint8_t>> requests;  // one chunk per RECV
  std::string transcript;                      // everything the server sent
};

class VirtualNetwork {
 public:
  /// Queues a client connection; chunks are strings for convenience
  /// (may contain NUL and arbitrary bytes via std::string contents).
  void add_session(const std::vector<std::string>& request_chunks);

  /// True if an un-accepted session is queued.
  bool has_pending_session() const;

  /// Accepts the next queued session; returns its connection id.
  std::optional<int> accept();

  /// Next request chunk for connection `id`; empty vector = orderly EOF,
  /// nullopt = bad connection id.
  std::optional<std::vector<uint8_t>> recv(int id);

  /// Records server->client bytes.
  bool send(int id, std::span<const uint8_t> data);

  /// Transcript of everything sent to session `index` (in add order).
  const std::string& transcript(size_t index) const;
  size_t session_count() const { return sessions_.size(); }

  /// Plain-data image for snapshot serialization (core/snapshot_io.cpp,
  /// DESIGN.md §13): every session with its delivery cursor, plus the
  /// accept cursor.
  struct Persist {
    struct Session {
      std::vector<std::vector<uint8_t>> requests;
      std::string transcript;
      uint64_t next_chunk = 0;
      bool accepted = false;
    };
    std::vector<Session> sessions;
    uint64_t next_accept = 0;
  };
  Persist persist() const;
  void restore_persist(const Persist& p);

 private:
  struct Live {
    ClientSession session;
    size_t next_chunk = 0;
    bool accepted = false;
  };
  std::vector<Live> sessions_;
  size_t next_accept_ = 0;
};

}  // namespace ptaint::os
