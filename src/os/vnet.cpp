#include "os/vnet.hpp"

namespace ptaint::os {

void VirtualNetwork::add_session(const std::vector<std::string>& chunks) {
  Live live;
  for (const auto& c : chunks) {
    live.session.requests.emplace_back(c.begin(), c.end());
  }
  sessions_.push_back(std::move(live));
}

bool VirtualNetwork::has_pending_session() const {
  return next_accept_ < sessions_.size();
}

std::optional<int> VirtualNetwork::accept() {
  if (!has_pending_session()) return std::nullopt;
  sessions_[next_accept_].accepted = true;
  return static_cast<int>(next_accept_++);
}

std::optional<std::vector<uint8_t>> VirtualNetwork::recv(int id) {
  if (id < 0 || static_cast<size_t>(id) >= sessions_.size()) {
    return std::nullopt;
  }
  Live& live = sessions_[id];
  if (!live.accepted) return std::nullopt;
  if (live.next_chunk >= live.session.requests.size()) {
    return std::vector<uint8_t>{};  // EOF
  }
  return live.session.requests[live.next_chunk++];
}

bool VirtualNetwork::send(int id, std::span<const uint8_t> data) {
  if (id < 0 || static_cast<size_t>(id) >= sessions_.size()) return false;
  sessions_[id].session.transcript.append(
      reinterpret_cast<const char*>(data.data()), data.size());
  return true;
}

const std::string& VirtualNetwork::transcript(size_t index) const {
  return sessions_.at(index).session.transcript;
}

VirtualNetwork::Persist VirtualNetwork::persist() const {
  Persist p;
  p.sessions.reserve(sessions_.size());
  for (const Live& live : sessions_) {
    p.sessions.push_back({live.session.requests, live.session.transcript,
                          live.next_chunk, live.accepted});
  }
  p.next_accept = next_accept_;
  return p;
}

void VirtualNetwork::restore_persist(const Persist& p) {
  sessions_.clear();
  sessions_.reserve(p.sessions.size());
  for (const Persist::Session& s : p.sessions) {
    Live live;
    live.session.requests = s.requests;
    live.session.transcript = s.transcript;
    live.next_chunk = static_cast<size_t>(s.next_chunk);
    live.accepted = s.accepted;
    sessions_.push_back(std::move(live));
  }
  next_accept_ = static_cast<size_t>(p.next_accept);
}

}  // namespace ptaint::os
