#include "os/vfs.hpp"

#include <algorithm>

namespace ptaint::os {

void Vfs::install(const std::string& path, std::vector<uint8_t> contents) {
  files_[path] = std::move(contents);
}

void Vfs::install(const std::string& path, const std::string& contents) {
  files_[path] = std::vector<uint8_t>(contents.begin(), contents.end());
}

bool Vfs::exists(const std::string& path) const { return files_.count(path); }

const std::vector<uint8_t>* Vfs::contents(const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : &it->second;
}

std::optional<int> Vfs::open(const std::string& path) {
  if (!files_.count(path)) return std::nullopt;
  open_files_.push_back({path, 0, false, true});
  return static_cast<int>(open_files_.size() - 1);
}

int Vfs::open_write(const std::string& path) {
  files_[path].clear();
  open_files_.push_back({path, 0, true, true});
  return static_cast<int>(open_files_.size() - 1);
}

std::optional<std::vector<uint8_t>> Vfs::read(int handle, uint32_t len) {
  if (handle < 0 || static_cast<size_t>(handle) >= open_files_.size()) {
    return std::nullopt;
  }
  OpenFile& f = open_files_[handle];
  if (!f.open || f.writable) return std::nullopt;
  const auto& data = files_.at(f.path);
  const size_t n = std::min<size_t>(len, data.size() - f.pos);
  std::vector<uint8_t> out(data.begin() + f.pos, data.begin() + f.pos + n);
  f.pos += n;
  return out;
}

bool Vfs::write(int handle, std::span<const uint8_t> data) {
  if (handle < 0 || static_cast<size_t>(handle) >= open_files_.size()) {
    return false;
  }
  OpenFile& f = open_files_[handle];
  if (!f.open || !f.writable) return false;
  auto& file = files_[f.path];
  file.insert(file.end(), data.begin(), data.end());
  return true;
}

void Vfs::close(int handle) {
  if (handle >= 0 && static_cast<size_t>(handle) < open_files_.size()) {
    open_files_[handle].open = false;
  }
}

Vfs::Persist Vfs::persist() const {
  Persist p;
  p.files = files_;
  p.open_files.reserve(open_files_.size());
  for (const OpenFile& f : open_files_) {
    p.open_files.push_back({f.path, f.pos, f.writable, f.open});
  }
  return p;
}

void Vfs::restore_persist(const Persist& p) {
  files_ = p.files;
  open_files_.clear();
  open_files_.reserve(p.open_files.size());
  for (const Persist::OpenFile& f : p.open_files) {
    open_files_.push_back(
        {f.path, static_cast<size_t>(f.pos), f.writable, f.open});
  }
}

}  // namespace ptaint::os
