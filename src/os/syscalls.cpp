#include "os/syscalls.hpp"

#include <algorithm>

#include "isa/isa.hpp"
#include "mem/taint.hpp"

namespace ptaint::os {

using mem::TaintedWord;

namespace {
constexpr uint32_t kMaxIoChunk = 1 << 20;  // sanity bound on guest I/O sizes
}

SimOs::SimOs() {
  fds_.resize(3);
  for (int i = 0; i < 3; ++i) fds_[i] = {Fd::Kind::kStdio, i};
}

void SimOs::set_stdin(const std::string& data) {
  stdin_data_.assign(data.begin(), data.end());
  stdin_pos_ = 0;
}

int SimOs::alloc_fd(Fd fd) {
  for (size_t i = 3; i < fds_.size(); ++i) {
    if (fds_[i].kind == Fd::Kind::kClosed) {
      fds_[i] = fd;
      return static_cast<int>(i);
    }
  }
  fds_.push_back(fd);
  return static_cast<int>(fds_.size() - 1);
}

uint32_t SimOs::do_read(cpu::Cpu& cpu, int fd, uint32_t buf, uint32_t len,
                        bool is_recv) {
  len = std::min(len, kMaxIoChunk);
  std::vector<uint8_t> data;
  if (fd >= 0 && static_cast<size_t>(fd) < fds_.size()) {
    const Fd& f = fds_[fd];
    if (f.kind == Fd::Kind::kStdio && f.handle == kStdin && !is_recv) {
      const size_t n = std::min<size_t>(len, stdin_data_.size() - stdin_pos_);
      data.assign(stdin_data_.begin() + stdin_pos_,
                  stdin_data_.begin() + stdin_pos_ + n);
      stdin_pos_ += n;
    } else if (f.kind == Fd::Kind::kVfsFile && !is_recv) {
      auto r = vfs_.read(f.handle, len);
      if (!r) return static_cast<uint32_t>(-1);
      data = std::move(*r);
    } else if (f.kind == Fd::Kind::kConnSocket) {
      auto r = net_.recv(f.handle);
      if (!r) return static_cast<uint32_t>(-1);
      data = std::move(*r);
      if (data.size() > len) data.resize(len);
    } else {
      return static_cast<uint32_t>(-1);
    }
  } else {
    return static_cast<uint32_t>(-1);
  }
  // The taint boundary (paper Section 4.4): every byte the kernel delivers
  // from an external source is marked tainted on its way to user space.
  cpu.memory().write_block(buf, data, taint_inputs_);
  cpu.invalidate_decode_range(buf, static_cast<uint32_t>(data.size()));
  if (taint_inputs_) {
    stats_.input_bytes_tainted += data.size();
    // §5.3 annotation extension: tainted input landing on an annotated
    // never-tainted structure is itself an alert.
    cpu.annotation_kernel_write(buf, static_cast<uint32_t>(data.size()));
  }
  return static_cast<uint32_t>(data.size());
}

void SimOs::syscall(cpu::Cpu& cpu) {
  ++stats_.syscalls;
  auto& regs = cpu.regs();
  const uint32_t no = regs.get(isa::kV0).value;
  const uint32_t a0 = regs.get(isa::kA0).value;
  const uint32_t a1 = regs.get(isa::kA1).value;
  const uint32_t a2 = regs.get(isa::kA2).value;
  auto ret = [&](uint32_t v) { regs.set(isa::kV0, TaintedWord{v}); };

  switch (no) {
    case kSysExit:
      cpu.request_exit(static_cast<int>(a0));
      return;
    case kSysRead:
      ++stats_.reads;
      ret(do_read(cpu, static_cast<int>(a0), a1, a2, /*is_recv=*/false));
      return;
    case kSysRecv:
      ++stats_.recvs;
      ret(do_read(cpu, static_cast<int>(a0), a1, a2, /*is_recv=*/true));
      return;
    case kSysWrite:
    case kSysSend: {
      const uint32_t len = std::min(a2, kMaxIoChunk);
      // Address-leak detector (the inverse taint direction): bytes carrying
      // stack/heap/text provenance crossing the kernel output boundary
      // disclose the address-space layout.  Checked before the sink sees
      // the data, in both engines, since they share this path.
      if (cpu.kernel_output_leak(a1, len)) return;
      std::vector<uint8_t> data = cpu.memory().read_block(a1, len);
      if (a0 < fds_.size()) {
        const Fd& f = fds_[a0];
        if (f.kind == Fd::Kind::kStdio) {
          auto& sink = f.handle == kStderr ? stderr_ : stdout_;
          sink.append(reinterpret_cast<const char*>(data.data()), data.size());
          ret(len);
          return;
        }
        if (f.kind == Fd::Kind::kVfsFile && vfs_.write(f.handle, data)) {
          ret(len);
          return;
        }
        if (f.kind == Fd::Kind::kConnSocket && net_.send(f.handle, data)) {
          ret(len);
          return;
        }
      }
      ret(static_cast<uint32_t>(-1));
      return;
    }
    case kSysOpen: {
      const std::string path = cpu.memory().read_cstring(a0);
      const bool writable = (a1 & 1) != 0;  // O_WRONLY-ish flag
      if (writable) {
        ret(static_cast<uint32_t>(
            alloc_fd({Fd::Kind::kVfsFile, vfs_.open_write(path)})));
        return;
      }
      auto h = vfs_.open(path);
      if (!h) {
        ret(static_cast<uint32_t>(-1));
        return;
      }
      ret(static_cast<uint32_t>(alloc_fd({Fd::Kind::kVfsFile, *h})));
      return;
    }
    case kSysClose:
      if (a0 >= 3 && a0 < fds_.size()) {
        if (fds_[a0].kind == Fd::Kind::kVfsFile) vfs_.close(fds_[a0].handle);
        fds_[a0] = {};
        ret(0);
      } else {
        ret(a0 < 3 ? 0 : static_cast<uint32_t>(-1));
      }
      return;
    case kSysBrk:
      // brk(0) queries; otherwise moves the break (never shrinks below the
      // initial value the loader set).  The returned break is the root of
      // heap address provenance: every heap pointer derives from it.
      if (a0 != 0 && a0 >= brk_) brk_ = a0;
      regs.set(isa::kV0, TaintedWord{brk_, mem::kHeapAddrMask});
      return;
    case kSysGetpid:
      ret(4211);
      return;
    case kSysSetuid:
      uid_ = a0;
      ret(0);
      return;
    case kSysGetuid:
      ret(uid_);
      return;
    case kSysSocket:
      ret(static_cast<uint32_t>(alloc_fd({Fd::Kind::kListenSocket, -1})));
      return;
    case kSysBind:
    case kSysListen:
      ret(a0 < fds_.size() &&
                  fds_[a0].kind == Fd::Kind::kListenSocket
              ? 0
              : static_cast<uint32_t>(-1));
      return;
    case kSysAccept: {
      if (a0 >= fds_.size() || fds_[a0].kind != Fd::Kind::kListenSocket) {
        ret(static_cast<uint32_t>(-1));
        return;
      }
      auto conn = net_.accept();
      if (!conn) {
        ret(static_cast<uint32_t>(-1));
        return;
      }
      ret(static_cast<uint32_t>(alloc_fd({Fd::Kind::kConnSocket, *conn})));
      return;
    }
    case kSysExec: {
      const std::string path = cpu.memory().read_cstring(a0);
      exec_log_.push_back(path);
      // The simulated kernel does not actually run another image; reaching
      // exec() is the compromise marker the evaluation checks for.
      ret(0);
      return;
    }
    default:
      cpu.request_fault("unknown syscall " + std::to_string(no));
      return;
  }
}


SimOs::Persist SimOs::persist() const {
  Persist p;
  p.vfs = vfs_.persist();
  p.net = net_.persist();
  p.fds.reserve(fds_.size());
  for (const Fd& fd : fds_) {
    p.fds.emplace_back(static_cast<uint8_t>(fd.kind),
                       static_cast<int32_t>(fd.handle));
  }
  p.stdin_data = stdin_data_;
  p.stdin_pos = stdin_pos_;
  p.stdout_text = stdout_;
  p.stderr_text = stderr_;
  p.exec_log = exec_log_;
  p.taint_inputs = taint_inputs_;
  p.brk = brk_;
  p.uid = uid_;
  p.stats = stats_;
  return p;
}

void SimOs::restore_persist(const Persist& p) {
  vfs_.restore_persist(p.vfs);
  net_.restore_persist(p.net);
  fds_.clear();
  fds_.reserve(p.fds.size());
  for (const auto& [kind, handle] : p.fds) {
    fds_.push_back({static_cast<Fd::Kind>(kind), static_cast<int>(handle)});
  }
  stdin_data_ = p.stdin_data;
  stdin_pos_ = static_cast<size_t>(p.stdin_pos);
  stdout_ = p.stdout_text;
  stderr_ = p.stderr_text;
  exec_log_ = p.exec_log;
  taint_inputs_ = p.taint_inputs;
  brk_ = p.brk;
  uid_ = p.uid;
  stats_ = p.stats;
}

}  // namespace ptaint::os
