// Simulated operating system: syscall emulation with taint initialization.
//
// This is the paper's Section 4.4 subsystem: every byte delivered to the
// guest through an input syscall (READ, RECV) — and the argv/environment
// block at program load — is marked tainted before it reaches user space.
// SYS_WRITE/SYS_SEND output is captured for assertions, and SYS_EXEC is
// recorded so attack-outcome classification can tell when a compromised
// server actually spawned a shell.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cpu/cpu.hpp"
#include "os/vfs.hpp"
#include "os/vnet.hpp"

namespace ptaint::os {

/// Syscall numbers (in $v0 at the SYSCALL instruction).
enum Sys : uint32_t {
  kSysExit = 1,
  kSysRead = 3,
  kSysWrite = 4,
  kSysOpen = 5,
  kSysClose = 6,
  kSysBrk = 17,
  kSysGetpid = 20,
  kSysSetuid = 23,
  kSysGetuid = 24,
  kSysSocket = 40,
  kSysBind = 41,
  kSysListen = 42,
  kSysAccept = 43,
  kSysRecv = 44,
  kSysSend = 45,
  kSysExec = 59,
};

/// Well-known file descriptors.
inline constexpr int kStdin = 0;
inline constexpr int kStdout = 1;
inline constexpr int kStderr = 2;

struct OsStats {
  uint64_t input_bytes_tainted = 0;  // bytes marked tainted at the boundary
  uint64_t syscalls = 0;
  uint64_t reads = 0;
  uint64_t recvs = 0;
};

class SimOs : public cpu::Os {
 public:
  SimOs();

  // --- host-side configuration ---
  Vfs& vfs() { return vfs_; }
  VirtualNetwork& net() { return net_; }
  /// Sets the bytes the guest will read from stdin.
  void set_stdin(const std::string& data);
  /// Whether input syscalls taint their buffers (true = the paper's design;
  /// false gives an unprotected-baseline run where nothing is ever tainted).
  void set_taint_inputs(bool taint) { taint_inputs_ = taint; }
  void set_initial_brk(uint32_t brk) { brk_ = brk; }
  void set_uid(uint32_t uid) { uid_ = uid; }

  // --- results ---
  const std::string& stdout_text() const { return stdout_; }
  const std::string& stderr_text() const { return stderr_; }
  const std::vector<std::string>& exec_log() const { return exec_log_; }
  uint32_t uid() const { return uid_; }
  uint32_t brk() const { return brk_; }
  const OsStats& stats() const { return stats_; }

  // cpu::Os
  void syscall(cpu::Cpu& cpu) override;

  /// Plain-data image of the whole OS state for snapshot serialization
  /// (core/snapshot_io.cpp, DESIGN.md §13).  Everything a syscall can
  /// observe or mutate is covered, so a restored SimOs continues
  /// byte-identically.
  struct Persist {
    Vfs::Persist vfs;
    VirtualNetwork::Persist net;
    std::vector<std::pair<uint8_t, int32_t>> fds;  // Fd kind + handle
    std::vector<uint8_t> stdin_data;
    uint64_t stdin_pos = 0;
    std::string stdout_text;
    std::string stderr_text;
    std::vector<std::string> exec_log;
    bool taint_inputs = true;
    uint32_t brk = 0;
    uint32_t uid = 1000;
    OsStats stats;
  };
  Persist persist() const;
  void restore_persist(const Persist& p);

 private:
  struct Fd {
    enum class Kind { kClosed, kStdio, kVfsFile, kListenSocket, kConnSocket };
    Kind kind = Kind::kClosed;
    int handle = -1;  // vfs handle or vnet connection id
  };

  int alloc_fd(Fd fd);
  uint32_t do_read(cpu::Cpu& cpu, int fd, uint32_t buf, uint32_t len,
                   bool is_recv);

  Vfs vfs_;
  VirtualNetwork net_;
  std::vector<Fd> fds_;
  std::vector<uint8_t> stdin_data_;
  size_t stdin_pos_ = 0;
  std::string stdout_;
  std::string stderr_;
  std::vector<std::string> exec_log_;
  bool taint_inputs_ = true;
  uint32_t brk_ = 0;
  uint32_t uid_ = 1000;
  OsStats stats_;
};

}  // namespace ptaint::os
