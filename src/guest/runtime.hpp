// Guest runtime: a small libc for PTA-32 programs, written in the
// repository's own assembly dialect.
//
// The evaluation of the paper detects attacks *inside library code* — the
// free-list unlink in free() and the %n argument write in vfprintf() — so
// the runtime reproduces those code shapes faithfully:
//
//  * malloc/free keep free chunks on a circular doubly-linked list with the
//    forward/backward links at the start of the free chunk's payload
//    (the paper's Figure 2 heap model).  free() coalesces forward and
//    unlinks the neighbour with the classic unhardened
//    `FD = B->fd; BK = B->bk; FD->bk = BK; BK->fd = FD` sequence — a heap
//    overflow that taints B's links turns this into the attacker's
//    arbitrary write, caught when the tainted FD is dereferenced.
//  * vfprintf() walks a fmt pointer and an argument pointer `ap` in the
//    o32 varargs layout; the %n handler is literally
//    `lw $3,0($s1); sw $21,0($3)` so a format-string attack alerts at
//    `sw $21,0($3)` with $3 holding the attacker's target address —
//    the exact transcript line of the paper's Table 2.
//
// Calling convention (o32-like): args in $a0..$a3, result in $v0, $s0-$s7/
// $fp/$ra callee-saved.  Functions that call printf-family functions keep a
// 16-byte outgoing-argument home area at the bottom of their frame; varargs
// walk from those home slots upward into the caller's frame.
#pragma once

#include <vector>

#include "asmgen/assembler.hpp"

namespace ptaint::guest {

/// _start: calls main(argc, argv, envp) and exits with its return value.
asmgen::Source crt0();

/// strlen, strcpy, strncpy, strcmp, strncmp, strcat, strchr, strstr,
/// memcpy, memset, atoi.
asmgen::Source string_lib();

/// malloc, free — the paper-model heap described above.
asmgen::Source malloc_lib();

/// Hardened variant of the heap: the unlink verifies FD->bk == B and
/// BK->fd == B before writing (the glibc "safe unlinking" mitigation that
/// postdates the paper).  Corrupted links abort the process with exit
/// status 134 instead of performing the attacker's write.  Used by the
/// mitigation-comparison ablation.
asmgen::Source malloc_lib_hardened();

/// vfprintf (with %d %u %x %c %s %n %%), printf, fdprintf, sprintf,
/// and the numeric emit helpers.
asmgen::Source printf_lib();

/// Syscall wrappers (read, write, open, close, socket, bind, listen,
/// accept, recv, send, sbrk, exit, getuid, setuid, exec) plus
/// scanf_str ("scanf(\"%s\", buf)") and gets.
asmgen::Source io_lib();

/// All runtime units in link order; prepend application units to this.
std::vector<asmgen::Source> runtime();

/// Convenience: runtime + the given application source.
std::vector<asmgen::Source> link_with_runtime(asmgen::Source app);

/// Same, but with the safe-unlink hardened heap.
std::vector<asmgen::Source> link_with_hardened_runtime(asmgen::Source app);

}  // namespace ptaint::guest
