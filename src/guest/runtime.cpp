#include "guest/runtime.hpp"

namespace ptaint::guest {

asmgen::Source crt0() {
  return {"crt0.s", R"(
# crt0: program entry.  The loader puts argc/argv/envp in $a0/$a1/$a2.
    .data
    .align 2
__envp: .word 0
    .text
_start:
    sw $a2, __envp            # stash envp for getenv()
    jal main
    move $a0, $v0
    li $v0, 1                 # SYS_EXIT
    syscall

# char* getenv(name) — walk the environment block.  The pointer cells are
# kernel-built (untainted); the "K=V" bytes are external input (tainted),
# exactly the paper's Section 4.4 source list.
getenv:
    addiu $sp, $sp, -32
    sw $ra, 28($sp)
    sw $s0, 24($sp)
    sw $s1, 20($sp)
    move $s0, $a0             # name
    lw $s1, __envp
    beqz $s1, getenv_miss
getenv_loop:
    lw $t9, 0($s1)            # entry pointer
    beqz $t9, getenv_miss
    # compare name against entry up to '='
    move $t0, $s0
    move $t1, $t9
getenv_cmp:
    lbu $t2, 0($t0)
    beqz $t2, getenv_name_end
    lbu $t3, 0($t1)
    bne $t2, $t3, getenv_next
    addiu $t0, $t0, 1
    addiu $t1, $t1, 1
    b getenv_cmp
getenv_name_end:
    lbu $t3, 0($t1)
    li $t2, '='
    bne $t3, $t2, getenv_next
    addiu $v0, $t1, 1         # value begins after '='
    b getenv_out
getenv_next:
    addiu $s1, $s1, 4
    b getenv_loop
getenv_miss:
    move $v0, $zero
getenv_out:
    lw $s1, 20($sp)
    lw $s0, 24($sp)
    lw $ra, 28($sp)
    addiu $sp, $sp, 32
    jr $ra
)"};
}

asmgen::Source io_lib() {
  return {"io.s", R"(
# Syscall wrappers and line/input helpers.
    .equ SYS_EXIT,   1
    .equ SYS_READ,   3
    .equ SYS_WRITE,  4
    .equ SYS_OPEN,   5
    .equ SYS_CLOSE,  6
    .equ SYS_BRK,    17
    .equ SYS_SETUID, 23
    .equ SYS_GETUID, 24
    .equ SYS_SOCKET, 40
    .equ SYS_BIND,   41
    .equ SYS_LISTEN, 42
    .equ SYS_ACCEPT, 43
    .equ SYS_RECV,   44
    .equ SYS_SEND,   45
    .equ SYS_EXEC,   59

    .text
# ssize_t read(fd, buf, len)
read:
    li $v0, SYS_READ
    syscall
    jr $ra

# ssize_t write(fd, buf, len)
write:
    li $v0, SYS_WRITE
    syscall
    jr $ra

# int open(path, flags)
open:
    li $v0, SYS_OPEN
    syscall
    jr $ra

# int close(fd)
close:
    li $v0, SYS_CLOSE
    syscall
    jr $ra

# int socket(), bind(fd), listen(fd), accept(fd)
socket:
    li $v0, SYS_SOCKET
    syscall
    jr $ra
bind:
    li $v0, SYS_BIND
    syscall
    jr $ra
listen:
    li $v0, SYS_LISTEN
    syscall
    jr $ra
accept:
    li $v0, SYS_ACCEPT
    syscall
    jr $ra

# ssize_t recv(fd, buf, len)
recv:
    li $v0, SYS_RECV
    syscall
    jr $ra

# ssize_t send(fd, buf, len)
send:
    li $v0, SYS_SEND
    syscall
    jr $ra

# int getuid(), setuid(uid)
getuid:
    li $v0, SYS_GETUID
    syscall
    jr $ra
setuid:
    li $v0, SYS_SETUID
    syscall
    jr $ra

# int exec(path) — records the spawned image in the simulated kernel.
exec:
    li $v0, SYS_EXEC
    syscall
    jr $ra

# void exit(status)
exit:
    li $v0, SYS_EXIT
    syscall

# void* sbrk(delta) — returns the old break.
sbrk:
    move $t0, $a0
    li $v0, SYS_BRK
    li $a0, 0
    syscall                   # v0 = current break
    move $t1, $v0
    addu $a0, $v0, $t0
    li $v0, SYS_BRK
    syscall
    move $v0, $t1
    jr $ra

# void fdputs(fd, s) — write a NUL-terminated string.
fdputs:
    addiu $sp, $sp, -32
    sw $ra, 28($sp)
    sw $s0, 24($sp)
    sw $s1, 20($sp)
    move $s0, $a0
    move $s1, $a1
    move $a0, $a1
    jal strlen
    move $a0, $s0
    move $a1, $s1
    move $a2, $v0
    jal write
    lw $s1, 20($sp)
    lw $s0, 24($sp)
    lw $ra, 28($sp)
    addiu $sp, $sp, 32
    jr $ra

# int scanf_str(buf) — the scanf("%s", buf) of the paper's examples: reads
# stdin bytes into buf until whitespace/EOF, with NO bound check.  The input
# bytes are written by SYS_READ directly into their final location, so their
# taint bits are preserved even though the loop compares each byte.
# Returns the number of bytes stored.
scanf_str:
    addiu $sp, $sp, -32
    sw $ra, 28($sp)
    sw $s0, 24($sp)
    sw $s1, 20($sp)
    move $s0, $a0             # cursor
    move $s1, $a0             # start
scanf_loop:
    li $a0, 0                 # stdin
    move $a1, $s0
    li $a2, 1
    jal read
    blez $v0, scanf_done      # EOF
    lbu $t0, 0($s0)           # (register copy; memory byte stays tainted)
    li $t1, ' '
    beq $t0, $t1, scanf_done
    li $t1, 10                # '\n'
    beq $t0, $t1, scanf_done
    li $t1, 9                 # '\t'
    beq $t0, $t1, scanf_done
    li $t1, 13                # '\r'
    beq $t0, $t1, scanf_done
    addiu $s0, $s0, 1
    b scanf_loop
scanf_done:
    sb $zero, 0($s0)          # terminator is program data, untainted
    subu $v0, $s0, $s1
    lw $s1, 20($sp)
    lw $s0, 24($sp)
    lw $ra, 28($sp)
    addiu $sp, $sp, 32
    jr $ra

# char* gets(buf) — reads a line from stdin (no bound check, as ever).
gets:
    addiu $sp, $sp, -32
    sw $ra, 28($sp)
    sw $s0, 24($sp)
    sw $s1, 20($sp)
    move $s0, $a0
    move $s1, $a0
gets_loop:
    li $a0, 0
    move $a1, $s0
    li $a2, 1
    jal read
    blez $v0, gets_done
    lbu $t0, 0($s0)
    li $t1, 10
    beq $t0, $t1, gets_done
    addiu $s0, $s0, 1
    b gets_loop
gets_done:
    sb $zero, 0($s0)
    move $v0, $s1
    lw $s1, 20($sp)
    lw $s0, 24($sp)
    lw $ra, 28($sp)
    addiu $sp, $sp, 32
    jr $ra
)"};
}

asmgen::Source string_lib() {
  return {"string.s", R"(
# String and memory functions.  Data bytes are stored BEFORE any comparison
# so that taintedness is preserved in the destination (the compare rule only
# clears the register copy).
    .text
# size_t strlen(s)
strlen:
    move $v0, $zero
strlen_loop:
    addu $t0, $a0, $v0
    lbu $t1, 0($t0)
    beqz $t1, strlen_done
    addiu $v0, $v0, 1
    b strlen_loop
strlen_done:
    jr $ra

# char* strcpy(dst, src)
strcpy:
    move $v0, $a0
    move $t0, $a0
strcpy_loop:
    lbu $t1, 0($a1)
    sb $t1, 0($t0)            # store first: taint reaches memory
    addiu $a1, $a1, 1
    addiu $t0, $t0, 1
    bnez $t1, strcpy_loop
    jr $ra

# char* strncpy(dst, src, n) — C semantics: zero-fills to n.
strncpy:
    move $v0, $a0
    move $t0, $a0
strncpy_loop:
    blez $a2, strncpy_done
    lbu $t1, 0($a1)
    sb $t1, 0($t0)
    addiu $t0, $t0, 1
    addiu $a2, $a2, -1
    beqz $t1, strncpy_fill
    addiu $a1, $a1, 1
    b strncpy_loop
strncpy_fill:
    blez $a2, strncpy_done
    sb $zero, 0($t0)
    addiu $t0, $t0, 1
    addiu $a2, $a2, -1
    b strncpy_fill
strncpy_done:
    jr $ra

# int strcmp(a, b)
strcmp:
strcmp_loop:
    lbu $t0, 0($a0)
    lbu $t1, 0($a1)
    bne $t0, $t1, strcmp_diff
    beqz $t0, strcmp_eq
    addiu $a0, $a0, 1
    addiu $a1, $a1, 1
    b strcmp_loop
strcmp_eq:
    move $v0, $zero
    jr $ra
strcmp_diff:
    subu $v0, $t0, $t1
    jr $ra

# int strncmp(a, b, n)
strncmp:
strncmp_loop:
    blez $a2, strncmp_eq
    lbu $t0, 0($a0)
    lbu $t1, 0($a1)
    bne $t0, $t1, strncmp_diff
    beqz $t0, strncmp_eq
    addiu $a0, $a0, 1
    addiu $a1, $a1, 1
    addiu $a2, $a2, -1
    b strncmp_loop
strncmp_eq:
    move $v0, $zero
    jr $ra
strncmp_diff:
    subu $v0, $t0, $t1
    jr $ra

# char* strcat(dst, src)
strcat:
    move $v0, $a0
    move $t0, $a0
strcat_seek:
    lbu $t1, 0($t0)
    beqz $t1, strcat_copy
    addiu $t0, $t0, 1
    b strcat_seek
strcat_copy:
    lbu $t1, 0($a1)
    sb $t1, 0($t0)
    addiu $a1, $a1, 1
    addiu $t0, $t0, 1
    bnez $t1, strcat_copy
    jr $ra

# char* strchr(s, c) — NULL when absent.
strchr:
    andi $a1, $a1, 0xff
strchr_loop:
    lbu $t0, 0($a0)
    beq $t0, $a1, strchr_hit
    beqz $t0, strchr_miss
    addiu $a0, $a0, 1
    b strchr_loop
strchr_hit:
    move $v0, $a0
    jr $ra
strchr_miss:
    move $v0, $zero
    jr $ra

# char* strstr(hay, needle) — NULL when absent.
strstr:
    lbu $t0, 0($a1)
    bnez $t0, strstr_scan
    move $v0, $a0             # empty needle
    jr $ra
strstr_scan:
    lbu $t0, 0($a0)
    beqz $t0, strstr_miss
    move $t1, $a0             # h
    move $t2, $a1             # n
strstr_inner:
    lbu $t3, 0($t2)
    beqz $t3, strstr_hit
    lbu $t4, 0($t1)
    bne $t3, $t4, strstr_next
    addiu $t1, $t1, 1
    addiu $t2, $t2, 1
    b strstr_inner
strstr_next:
    addiu $a0, $a0, 1
    b strstr_scan
strstr_hit:
    move $v0, $a0
    jr $ra
strstr_miss:
    move $v0, $zero
    jr $ra

# void* memcpy(dst, src, n)
memcpy:
    move $v0, $a0
    move $t0, $a0
memcpy_loop:
    blez $a2, memcpy_done
    lbu $t1, 0($a1)
    sb $t1, 0($t0)
    addiu $a1, $a1, 1
    addiu $t0, $t0, 1
    addiu $a2, $a2, -1
    b memcpy_loop
memcpy_done:
    jr $ra

# void* memset(dst, c, n)
memset:
    move $v0, $a0
    move $t0, $a0
memset_loop:
    blez $a2, memset_done
    sb $a1, 0($t0)
    addiu $t0, $t0, 1
    addiu $a2, $a2, -1
    b memset_loop
memset_done:
    jr $ra

# int atoi(s) — optional '-', decimal digits.  Note the byte comparisons
# validate (hence untaint) each digit: the result is trusted data.  That is
# exactly the laundering path behind the paper's Table 4(A) false negative.
atoi:
    move $v0, $zero
    li $t2, 1                 # sign
    lbu $t0, 0($a0)
    li $t1, '-'
    bne $t0, $t1, atoi_loop
    li $t2, -1
    addiu $a0, $a0, 1
atoi_loop:
    lbu $t0, 0($a0)
    blt $t0, '0', atoi_done
    bgt $t0, '9', atoi_done
    addiu $t0, $t0, -48
    li $t1, 10
    mul $v0, $v0, $t1
    addu $v0, $v0, $t0
    addiu $a0, $a0, 1
    b atoi_loop
atoi_done:
    mul $v0, $v0, $t2
    jr $ra
)"};
}

asmgen::Source malloc_lib() {
  return {"malloc.s", R"(
# Heap allocator following the paper's Figure 2 model: free chunks are kept
# on a circular doubly-linked list whose forward (fd) and backward (bk)
# links live in the first words of the free chunk's payload.  Chunk layout:
#
#   [ size|INUSE (4 bytes) ][ payload ... ]          allocated
#   [ size        (4 bytes) ][ fd ][ bk ][ ... ]     free
#
# Sizes include the header and are multiples of 8; header bit 0 marks an
# in-use chunk.  free() coalesces with the following chunk by unlinking it
# with the classic unhardened sequence
#     FD = B->fd; BK = B->bk; FD->bk = BK; BK->fd = FD;
# which is THE memory-corruption gadget of heap overflow / double-free
# attacks: corrupt links turn it into a write to an attacker-chosen address.
    .data
    .align 3
__bin:       .word 0, 0, 0      # pseudo-chunk: [size][fd][bk]
__heap_init: .word 0
__heap_top:  .word 0            # first address past the last chunk

    .equ MIN_CHUNK, 16
    .equ GROW_BYTES, 4096

    .text
# internal: __grow_heap(bytes) — sbrk a new free chunk and bin it.
__grow_heap:
    addiu $sp, $sp, -24
    sw $ra, 20($sp)
    sw $s0, 16($sp)
    move $s0, $a0
    jal sbrk                  # v0 = old break = new chunk address
    sw $s0, 0($v0)            # header: size, free
    lw $t0, __heap_top
    bnez $t0, __grow_have_top
    b __grow_set_top
__grow_have_top:
__grow_set_top:
    addu $t1, $v0, $s0
    sw $t1, __heap_top
    # insert at bin head
    la $t0, __bin
    lw $t2, 4($t0)            # old first
    sw $t2, 4($v0)            # new->fd = old
    sw $t0, 8($v0)            # new->bk = bin
    sw $v0, 4($t0)            # bin->fd = new
    sw $v0, 8($t2)            # old->bk = new
    lw $s0, 16($sp)
    lw $ra, 20($sp)
    addiu $sp, $sp, 24
    jr $ra

# void* malloc(n) — first fit with splitting.
malloc:
    addiu $sp, $sp, -24
    sw $ra, 20($sp)
    sw $s0, 16($sp)
    sw $s1, 12($sp)
    # req = max(MIN_CHUNK, align8(n + 4))
    addiu $s0, $a0, 11
    li $t0, -8
    and $s0, $s0, $t0
    bgeu $s0, MIN_CHUNK, malloc_init
    li $s0, MIN_CHUNK
malloc_init:
    lw $t0, __heap_init
    bnez $t0, malloc_scan
    li $t1, 1
    sw $t1, __heap_init
    la $t0, __bin
    sw $t0, 4($t0)            # bin->fd = bin
    sw $t0, 8($t0)            # bin->bk = bin
malloc_scan:
    la $t0, __bin
    lw $s1, 4($t0)            # cur = bin->fd
malloc_scan_loop:
    la $t0, __bin
    beq $s1, $t0, malloc_grow # wrapped around: nothing fits
    lw $t1, 0($s1)            # cur->size
    bgeu $t1, $s0, malloc_fit
    lw $s1, 4($s1)            # cur = cur->fd
    b malloc_scan_loop
malloc_grow:
    li $a0, GROW_BYTES
    bgeu $a0, $s0, malloc_grow_sized
    addiu $a0, $s0, 8
malloc_grow_sized:
    jal __grow_heap
    b malloc_scan
malloc_fit:
    # unlink cur ($s1)
    lw $t2, 4($s1)            # FD = cur->fd
    lw $t3, 8($s1)            # BK = cur->bk
    sw $t3, 8($t2)            # FD->bk = BK   (tainted FD => alert here)
    sw $t2, 4($t3)            # BK->fd = FD   (tainted BK => alert here)
    lw $t1, 0($s1)            # size
    subu $t4, $t1, $s0
    bltu $t4, MIN_CHUNK, malloc_take_all
    # split: remainder chunk goes back to the bin head
    addu $t5, $s1, $s0
    sw $t4, 0($t5)            # remainder header (free)
    la $t0, __bin
    lw $t6, 4($t0)
    sw $t6, 4($t5)
    sw $t0, 8($t5)
    sw $t5, 4($t0)
    sw $t5, 8($t6)
    move $t1, $s0
malloc_take_all:
    ori $t1, $t1, 1
    sw $t1, 0($s1)            # mark in use
    addiu $v0, $s1, 4         # payload
    lw $s1, 12($sp)
    lw $s0, 16($sp)
    lw $ra, 20($sp)
    addiu $sp, $sp, 24
    jr $ra

# void free(ptr) — forward-coalesce, then push on the bin.
free:
    beqz $a0, free_ret
    addiu $t0, $a0, -4        # chunk
    lw $t1, 0($t0)            # header
    li $t2, -2
    and $t1, $t1, $t2         # size
    addu $t3, $t0, $t1        # B = next chunk
    lw $t4, __heap_top
    bgeu $t3, $t4, free_insert
    lw $t5, 0($t3)            # B header
    andi $t6, $t5, 1
    bnez $t6, free_insert     # next chunk in use: no coalesce
    # unlink B: the attack point of exp2 / NULL-HTTPD / Figure 2.
    lw $3, 4($t3)             # FD = B->fd   (tainted after heap overflow)
    lw $t7, 8($t3)            # BK = B->bk
    sw $t7, 8($3)             # FD->bk = BK  <-- alert: sw $15,8($3)
    sw $3, 4($t7)             # BK->fd = FD
    li $t2, -2
    and $t5, $t5, $t2
    addu $t1, $t1, $t5        # merged size
free_insert:
    sw $t1, 0($t0)            # free header
    la $t2, __bin
    lw $t6, 4($t2)
    sw $t6, 4($t0)            # chunk->fd = old first
    sw $t2, 8($t0)            # chunk->bk = bin
    sw $t0, 4($t2)            # bin->fd = chunk
    sw $t0, 8($t6)            # old->bk = chunk
free_ret:
    jr $ra
)"};
}

asmgen::Source printf_lib() {
  return {"printf.s", R"(
# printf family.  vfprintf(fd, fmt, ap) sweeps two pointers exactly as the
# paper describes: `fmt` over the format string and `ap` over the argument
# area.  With the o32 varargs layout, register arguments are spilled to the
# caller's home slots so `ap` walks from them straight up into the caller's
# frame — which is what lets %x...%n attacks steer `ap` into attacker data.
# The %n handler is the paper's detection point:  sw $21,0($3).
    .data
__sprintf_dst: .word 0          # memory-sink cursor for sprintf

    .text
# internal: __pf_putc — emit byte $a0; fd in $s2 (-2 = memory sink),
# count in $21 ($s5), scratch byte address in $s6.
__pf_putc:
    li $t0, -2
    beq $s2, $t0, __pf_putc_mem
    sb $a0, 0($s6)
    move $a0, $s2
    move $a1, $s6
    li $a2, 1
    li $v0, 4                 # SYS_WRITE (stdio, file or socket)
    syscall
    addiu $21, $21, 1
    jr $ra
__pf_putc_mem:
    lw $t1, __sprintf_dst
    sb $a0, 0($t1)
    addiu $t1, $t1, 1
    sw $t1, __sprintf_dst
    addiu $21, $21, 1
    jr $ra

# internal: __pf_num — print $a0 unsigned in base $a1, min field width $a2
# zero-padded ($s7 = digit buffer end).  Width is how %08x-style directives
# let format-string attacks choose the exact count a later %n writes.
__pf_num:
    addiu $sp, $sp, -8
    sw $ra, 4($sp)
    move $t0, $a0
    move $t2, $a1
    move $t9, $a2             # min width
    move $t3, $s7             # write pointer (builds digits backwards)
__pf_num_loop:
    divu $t0, $t2             # lo = q, hi = r
    mfhi $t1
    mflo $t0
    blt $t1, 10, __pf_num_dig
    addiu $t1, $t1, 39        # 'a' - '0' - 10
__pf_num_dig:
    addiu $t1, $t1, 48        # '0'
    addiu $t3, $t3, -1
    sb $t1, 0($t3)
    bnez $t0, __pf_num_loop
__pf_num_pad:
    subu $t1, $s7, $t3        # digits produced
    subu $t9, $t9, $t1        # zeros still needed
__pf_num_pad_loop:
    blez $t9, __pf_num_emit
    li $a0, '0'
    addiu $sp, $sp, -8
    sw $t3, 0($sp)
    sw $t9, 4($sp)
    jal __pf_putc
    lw $t9, 4($sp)
    lw $t3, 0($sp)
    addiu $sp, $sp, 8
    addiu $t9, $t9, -1
    b __pf_num_pad_loop
__pf_num_emit:
    bgeu $t3, $s7, __pf_num_done
    lbu $a0, 0($t3)
    addiu $t3, $t3, 1
    addiu $sp, $sp, -8
    sw $t3, 0($sp)
    jal __pf_putc
    lw $t3, 0($sp)
    addiu $sp, $sp, 8
    b __pf_num_emit
__pf_num_done:
    lw $ra, 4($sp)
    addiu $sp, $sp, 8
    jr $ra

# int vfprintf(fd, fmt, ap)
vfprintf:
    addiu $sp, $sp, -64
    sw $ra, 60($sp)
    sw $s0, 56($sp)
    sw $s1, 52($sp)
    sw $s2, 48($sp)
    sw $21, 44($sp)
    sw $s6, 40($sp)
    sw $s7, 36($sp)
    sw $s3, 12($sp)
    move $s2, $a0             # fd
    move $s0, $a1             # fmt
    move $s1, $a2             # ap
    move $21, $zero           # count
    addiu $s6, $sp, 16        # putc scratch byte
    addiu $s7, $sp, 33        # digit buffer end (16 bytes at sp+17)
vf_loop:
    lbu $t0, 0($s0)
    beqz $t0, vf_done
    addiu $s0, $s0, 1
    li $t1, '%'
    beq $t0, $t1, vf_directive
    move $a0, $t0
    jal __pf_putc
    b vf_loop
vf_directive:
    # optional zero-padded minimum field width (e.g. %08x), capped at 64
    li $s3, 0
vf_width_loop:
    lbu $t0, 0($s0)
    blt $t0, '0', vf_width_done
    bgt $t0, '9', vf_width_done
    addiu $t0, $t0, -48
    li $t1, 10
    mul $s3, $s3, $t1
    addu $s3, $s3, $t0
    addiu $s0, $s0, 1
    b vf_width_loop
vf_width_done:
    ble $s3, 64, vf_width_ok
    li $s3, 64
vf_width_ok:
    lbu $t0, 0($s0)
    beqz $t0, vf_done
    addiu $s0, $s0, 1
    li $t1, 'd'
    beq $t0, $t1, vf_d
    li $t1, 'u'
    beq $t0, $t1, vf_u
    li $t1, 'x'
    beq $t0, $t1, vf_x
    li $t1, 'c'
    beq $t0, $t1, vf_c
    li $t1, 's'
    beq $t0, $t1, vf_s
    li $t1, 'n'
    beq $t0, $t1, vf_n
    li $t1, '%'
    beq $t0, $t1, vf_pct
    # unknown directive: emit verbatim
    li $a0, '%'
    addiu $sp, $sp, -8
    sw $t0, 0($sp)
    jal __pf_putc
    lw $a0, 0($sp)
    addiu $sp, $sp, 8
    jal __pf_putc
    b vf_loop
vf_pct:
    li $a0, '%'
    jal __pf_putc
    b vf_loop
vf_c:
    lw $a0, 0($s1)
    addiu $s1, $s1, 4
    jal __pf_putc
    b vf_loop
vf_d:
    lw $a0, 0($s1)
    addiu $s1, $s1, 4
    bgez $a0, vf_d_pos
    addiu $sp, $sp, -8
    sw $a0, 0($sp)
    li $a0, '-'
    jal __pf_putc
    lw $a0, 0($sp)
    addiu $sp, $sp, 8
    negu $a0, $a0
vf_d_pos:
    li $a1, 10
    move $a2, $s3
    jal __pf_num
    b vf_loop
vf_u:
    lw $a0, 0($s1)
    addiu $s1, $s1, 4
    li $a1, 10
    move $a2, $s3
    jal __pf_num
    b vf_loop
vf_x:
    lw $a0, 0($s1)
    addiu $s1, $s1, 4
    li $a1, 16
    move $a2, $s3
    jal __pf_num
    b vf_loop
vf_s:
    lw $t2, 0($s1)
    addiu $s1, $s1, 4
vf_s_loop:
    lbu $a0, 0($t2)           # tainted string pointer would alert here
    beqz $a0, vf_loop
    addiu $t2, $t2, 1
    addiu $sp, $sp, -8
    sw $t2, 0($sp)
    jal __pf_putc
    lw $t2, 0($sp)
    addiu $sp, $sp, 8
    b vf_s_loop
vf_n:
    # *(int*)*ap = chars written so far.  This is the paper's format-string
    # detection point: a steered ap reads an attacker word into $3 and the
    # store dereferences it.
    lw $3, 0($s1)
    addiu $s1, $s1, 4
    sw $21, 0($3)             # <-- alert: sw $21,0($3)
    b vf_loop
vf_done:
    move $v0, $21
    lw $s3, 12($sp)
    lw $s7, 36($sp)
    lw $s6, 40($sp)
    lw $21, 44($sp)
    lw $s2, 48($sp)
    lw $s1, 52($sp)
    lw $s0, 56($sp)
    lw $ra, 60($sp)
    addiu $sp, $sp, 64
    jr $ra

# int printf(fmt, ...) — spills register varargs to the caller's home slots
# and walks them with vfprintf.
printf:
    sw $a1, 4($sp)            # caller home slots (o32 varargs layout)
    sw $a2, 8($sp)
    sw $a3, 12($sp)
    addiu $sp, $sp, -8
    sw $ra, 4($sp)
    move $a1, $a0             # fmt
    li $a0, 1                 # stdout
    addiu $a2, $sp, 12        # ap = entry_sp + 4
    jal vfprintf
    lw $ra, 4($sp)
    addiu $sp, $sp, 8
    jr $ra

# int fdprintf(fd, fmt, ...) — the server-side printf; WU-FTPD-style
# format-string bugs call this with attacker-controlled fmt.
fdprintf:
    sw $a2, 8($sp)
    sw $a3, 12($sp)
    addiu $sp, $sp, -8
    sw $ra, 4($sp)
    addiu $a2, $sp, 16        # ap = entry_sp + 8
    jal vfprintf
    lw $ra, 4($sp)
    addiu $sp, $sp, 8
    jr $ra

# int sprintf(dst, fmt, ...)
sprintf:
    sw $a2, 8($sp)
    sw $a3, 12($sp)
    addiu $sp, $sp, -8
    sw $ra, 4($sp)
    sw $a0, __sprintf_dst
    li $a0, -2                # memory sink
    move $a1, $a1
    addiu $a2, $sp, 16        # ap = entry_sp + 8
    jal vfprintf
    lw $t0, __sprintf_dst
    sb $zero, 0($t0)
    lw $ra, 4($sp)
    addiu $sp, $sp, 8
    jr $ra
)"};
}

asmgen::Source malloc_lib_hardened() {
  // Same layout/API as malloc_lib(); free()'s forward-coalesce unlink adds
  // the safe-unlink consistency check.  NOTE: the check itself LOADS
  // through the (possibly tainted) links, so under pointer-taintedness
  // detection the alert now fires at a LW — matching the paper's reported
  // `lw $3,0($3)`-style site — while unprotected the corrupted unlink
  // aborts instead of writing (the post-2004 mitigation).
  asmgen::Source base = malloc_lib();
  const std::string needle =
      "    # unlink B: the attack point of exp2 / NULL-HTTPD / Figure 2.\n"
      "    lw $3, 4($t3)             # FD = B->fd   (tainted after heap overflow)\n"
      "    lw $t7, 8($t3)            # BK = B->bk\n"
      "    sw $t7, 8($3)             # FD->bk = BK  <-- alert: sw $15,8($3)\n"
      "    sw $3, 4($t7)             # BK->fd = FD\n";
  const std::string hardened =
      "    # safe unlink (glibc-style): verify FD->bk == B && BK->fd == B\n"
      "    lw $3, 4($t3)             # FD = B->fd   (tainted after overflow)\n"
      "    lw $t7, 8($t3)            # BK = B->bk\n"
      "    lw $t8, 8($3)             # FD->bk  <-- alert: lw $24,8($3)\n"
      "    bne $t8, $t3, __unlink_abort\n"
      "    lw $t8, 4($t7)            # BK->fd\n"
      "    bne $t8, $t3, __unlink_abort\n"
      "    sw $t7, 8($3)             # FD->bk = BK\n"
      "    sw $3, 4($t7)             # BK->fd = FD\n";
  const size_t pos = base.text.find(needle);
  if (pos != std::string::npos) {
    base.text.replace(pos, needle.size(), hardened);
  }
  base.text +=
      "\n__unlink_abort:\n"
      "    li $a0, 134               # SIGABRT-style status\n"
      "    jal exit\n";
  base.name = "malloc_hardened.s";
  return base;
}

std::vector<asmgen::Source> runtime() {
  return {crt0(), io_lib(), string_lib(), malloc_lib(), printf_lib()};
}

std::vector<asmgen::Source> link_with_runtime(asmgen::Source app) {
  auto units = runtime();
  units.push_back(std::move(app));
  return units;
}

std::vector<asmgen::Source> link_with_hardened_runtime(asmgen::Source app) {
  std::vector<asmgen::Source> units = {crt0(), io_lib(), string_lib(),
                                       malloc_lib_hardened(), printf_lib()};
  units.push_back(std::move(app));
  return units;
}

}  // namespace ptaint::guest
