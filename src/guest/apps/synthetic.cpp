// Figure 2 synthetic vulnerable programs (paper Section 5.1.1).
#include "guest/apps/apps.hpp"

namespace ptaint::guest::apps {

asmgen::Source exp1_stack() {
  return {"exp1.s", R"(
# void exp1() { char buf[10]; scanf("%s", buf); }
#
# Frame (40 bytes):  sp+0..15 outgoing homes, sp+16..25 buf[10],
# sp+26..35 pad, sp+36 saved $ra.  A 24-byte input overruns buf through the
# saved return address (sp+36..39), so exp1's `jr $31` consumes 0x61616161.
    .text
exp1:
    addiu $sp, $sp, -40
    sw $ra, 36($sp)
    addiu $a0, $sp, 16
    jal scanf_str
    lw $ra, 36($sp)
    addiu $sp, $sp, 40
    jr $ra                    # <-- detection point: jr $31

main:
    addiu $sp, $sp, -24
    sw $ra, 20($sp)
    jal exp1
    li $v0, 0
    lw $ra, 20($sp)
    addiu $sp, $sp, 24
    jr $ra
)"};
}

asmgen::Source exp2_heap() {
  return {"exp2.s", R"(
# void exp2() { char* buf = malloc(8); scanf("%s", buf); free(buf); }
#
# malloc(8) creates a 16-byte chunk; the free remainder chunk B follows it
# immediately.  Overflowing buf taints B's header and forward/backward
# links, and free(buf)'s forward-coalesce unlink dereferences the tainted
# link (the Figure 2 heap corruption).
    .text
exp2:
    addiu $sp, $sp, -24
    sw $ra, 20($sp)
    sw $s0, 16($sp)
    li $a0, 8
    jal malloc
    move $s0, $v0
    move $a0, $s0
    jal scanf_str
    move $a0, $s0
    jal free                  # <-- detection point: unlink inside free()
    li $v0, 0
    lw $s0, 16($sp)
    lw $ra, 20($sp)
    addiu $sp, $sp, 24
    jr $ra

main:
    addiu $sp, $sp, -24
    sw $ra, 20($sp)
    jal exp2
    li $v0, 0
    lw $ra, 20($sp)
    addiu $sp, $sp, 24
    jr $ra
)"};
}

asmgen::Source exp3_format() {
  return {"exp3.s", R"(
# void exp3(int s) { char buf[100]; recv(s, buf, 100, 0); printf(buf); }
#
# buf sits at sp+16, directly above the 16-byte outgoing home area, so
# vfprintf's ap (= caller_sp+4) reaches buf[0] after exactly three %x pops:
# abcd%x%x%x%n dereferences 0x64636261 at `sw $21,0($3)`.
    .text
exp3:
    addiu $sp, $sp, -120
    sw $ra, 116($sp)
    sw $s0, 112($sp)
    move $s0, $a0
    move $a0, $s0
    addiu $a1, $sp, 16        # buf
    li $a2, 100
    jal recv
    addiu $a0, $sp, 16
    jal printf                # VULN: user data as the format string
    li $v0, 0
    lw $s0, 112($sp)
    lw $ra, 116($sp)
    addiu $sp, $sp, 120
    jr $ra

main:
    addiu $sp, $sp, -24
    sw $ra, 20($sp)
    sw $s0, 16($sp)
    jal socket
    move $s0, $v0
    move $a0, $s0
    jal bind
    move $a0, $s0
    jal listen
    move $a0, $s0
    jal accept
    move $a0, $v0             # connection fd
    jal exp3
    li $v0, 0
    lw $s0, 16($sp)
    lw $ra, 20($sp)
    addiu $sp, $sp, 24
    jr $ra
)"};
}

}  // namespace ptaint::guest::apps
