// mini GHTTPD (paper Section 5.1.2).
//
// Reproduces GHTTPD 1.4's Log() stack overflow (securityfocus bid 5960):
// the request is copied into a 200-byte stack buffer with strcpy after the
// URL has been parsed and policy-checked.  The overflow rewrites the stack
// slot holding the URL pointer, so the served URL is re-read from attacker
// data *after* the "/.." check — a pure non-control-data attack.  The
// pointer is dereferenced byte-by-byte when serving (a LB instruction),
// which is where the pointer-taintedness detector fires.
//
// serveconnection() frame (768 bytes):
//   sp+16  .. sp+215   logbuf[200]
//   sp+216             url pointer slot   <- overwritten at offset 200
//   sp+232 .. sp+743   reqbuf[512]        <- attack payload lives here
//   sp+756/760/764     saved $s1/$s0/$ra
// The entry stores &reqbuf into `dbg_reqbuf` so the host-side attack
// builder can place the pointer exactly (deterministic "reconnaissance").
#include "guest/apps/apps.hpp"

namespace ptaint::guest::apps {

asmgen::Source ghttpd() {
  return {"ghttpd.s", R"(
    .data
msg_ok:     .asciiz "HTTP/1.0 200 OK\r\n\r\nserving: "
msg_nl:     .asciiz "\r\n"
msg_reject: .asciiz "HTTP/1.0 403 Forbidden (dotdot)\r\n"
dotdot:     .asciiz "/.."
updir:      .asciiz "../"
binsh:      .asciiz "/bin/sh"
    .align 2
dbg_reqbuf: .word 0

    .text
# serve_url(conn, url) — echoes then "executes" CGI path traversals.
serve_url:
    addiu $sp, $sp, -32
    sw $ra, 28($sp)
    sw $s0, 24($sp)
    sw $s1, 20($sp)
    move $s0, $a0
    move $s1, $a1
    move $a0, $s0
    la $a1, msg_ok
    jal fdputs
    move $a0, $s0
    move $a1, $s1             # <-- detection point: fdputs/strlen LB on the
    jal fdputs                #     tainted URL pointer
    move $a0, $s0
    la $a1, msg_nl
    jal fdputs
    # resolve "../" sequences: serving past the root runs the target
    # ($s1 doubles as the resolve cursor; it survives the calls below)
resolve_loop:
    move $a0, $s1
    la $a1, updir
    jal strstr
    beqz $v0, resolved
    addiu $s1, $v0, 2         # skip "..", keep the trailing '/'
    b resolve_loop
resolved:
    move $a0, $s1
    la $a1, binsh
    jal strcmp
    bnez $v0, serve_done
    move $a0, $s1
    jal exec                  # compromise marker: /bin/sh spawned
serve_done:
    lw $s1, 20($sp)
    lw $s0, 24($sp)
    lw $ra, 28($sp)
    addiu $sp, $sp, 32
    jr $ra

# serveconnection(conn)
serveconnection:
    addiu $sp, $sp, -768
    sw $ra, 764($sp)
    sw $s0, 760($sp)
    sw $s1, 756($sp)
    move $s0, $a0
    addiu $t0, $sp, 232
    sw $t0, dbg_reqbuf        # reconnaissance aid (see header comment)
    move $a0, $s0
    addiu $a1, $sp, 232       # reqbuf
    li $a2, 511
    jal recv
    blez $v0, conn_done
    addiu $t0, $sp, 232
    addu $t0, $t0, $v0
    sb $zero, 0($t0)
    # parse URL: skip "GET ", terminate at space/CR/LF
    addiu $s1, $sp, 236       # url = reqbuf + 4
    move $t0, $s1
url_term:
    lbu $t1, 0($t0)
    beqz $t1, url_termed
    li $t2, ' '
    beq $t1, $t2, url_cut
    li $t2, 13
    beq $t1, $t2, url_cut
    li $t2, 10
    beq $t1, $t2, url_cut
    addiu $t0, $t0, 1
    b url_term
url_cut:
    sb $zero, 0($t0)
url_termed:
    sw $s1, 216($sp)          # stash the URL pointer (the attack target)
    # security policy: reject URLs containing "/.."
    move $a0, $s1
    la $a1, dotdot
    jal strstr
    bnez $v0, conn_reject
    # Log(): copy the whole request into the 200-byte log buffer (VULN)
    addiu $a0, $sp, 16
    addiu $a1, $sp, 232
    jal strcpy                # <-- overflow rewrites the slot at sp+216
    # serve the (re-loaded) URL
    lw $a1, 216($sp)          # now attacker-controlled
    move $a0, $s0
    jal serve_url
    b conn_done
conn_reject:
    move $a0, $s0
    la $a1, msg_reject
    jal fdputs
conn_done:
    lw $s1, 756($sp)
    lw $s0, 760($sp)
    lw $ra, 764($sp)
    addiu $sp, $sp, 768
    jr $ra

main:
    addiu $sp, $sp, -32
    sw $ra, 28($sp)
    sw $s0, 24($sp)
    jal socket
    move $s0, $v0
    move $a0, $s0
    jal bind
    move $a0, $s0
    jal listen
    move $a0, $s0
    jal accept
    move $a0, $v0
    jal serveconnection
    li $v0, 0
    lw $s0, 24($sp)
    lw $ra, 28($sp)
    addiu $sp, $sp, 32
    jr $ra
)"};
}

}  // namespace ptaint::guest::apps
