// mini NULL HTTPD (paper Section 5.1.2).
//
// Reproduces Null HTTPD 0.5.0's POST heap overflow (securityfocus bid
// 5774): the server adds 1024 to the client-supplied Content-Length without
// rejecting negative values, allocates the (too small) buffer, then
// receives up to 1024 body bytes into it — a heap overflow over the
// adjacent free chunk's links.  free() then performs the corrupted unlink.
//
// The non-control-data attack redirects the CGI root configuration pointer
// (normally -> "/usr") at attacker bytes "/bin" smuggled into the request,
// via the unlink's mirrored writes, so a follow-up "GET /cgi-bin/sh" execs
// /bin/sh with server privileges.
#include "guest/apps/apps.hpp"

namespace ptaint::guest::apps {

asmgen::Source null_httpd() {
  return {"nullhttpd.s", R"(
    .data
msg_ok:     .asciiz "HTTP/1.0 200 OK\r\n\r\n"
msg_hello:  .asciiz "<html>null httpd</html>\r\n"
msg_posted: .asciiz "HTTP/1.0 200 OK\r\n\r\nposted\r\n"
msg_reject: .asciiz "HTTP/1.0 403 Forbidden\r\n\r\n"
hdr_cl:     .asciiz "Content-Length:"
pfx_post:   .asciiz "POST"
pfx_cgi:    .asciiz "GET /cgi-bin/"
pfx_get:    .asciiz "GET"
dotdot:     .asciiz ".."
fmt_path:   .asciiz "%s/%s"
default_root: .asciiz "/usr"  # the configured CGI executable root
    .align 2
cgibin_ptr: .word default_root  # CGI root config (the attack target)
req:        .space 1200
path:       .space 128

    .text
# handle_post(conn) — the vulnerable request handler.
handle_post:
    addiu $sp, $sp, -32
    sw $ra, 28($sp)
    sw $s0, 24($sp)
    sw $s1, 20($sp)
    move $s0, $a0
    # in_bufsize = 1024 + atoi(Content-Length)   -- no sign check (VULN)
    la $a0, req
    la $a1, hdr_cl
    jal strstr
    beqz $v0, post_done
    addiu $a0, $v0, 16        # skip "Content-Length: "
    jal atoi
    addiu $t0, $v0, 1024
    move $a0, $t0
    jal malloc
    move $s1, $v0             # PostData buffer (too small when CL < 0)
    # read the body: up to 1024 bytes regardless of the allocation size
    move $a0, $s0
    move $a1, $s1
    li $a2, 1024
    jal recv                  # <-- heap overflow over the next chunk
    move $a0, $s1
    jal free                  # <-- detection point: corrupted unlink
    move $a0, $s0
    la $a1, msg_posted
    jal fdputs
post_done:
    lw $s1, 20($sp)
    lw $s0, 24($sp)
    lw $ra, 28($sp)
    addiu $sp, $sp, 32
    jr $ra

# handle_cgi(conn) — resolve the executable under cgi_root and run it.
handle_cgi:
    addiu $sp, $sp, -32
    sw $ra, 28($sp)
    sw $s0, 24($sp)
    sw $s1, 20($sp)
    move $s0, $a0
    # name = req + 13, NUL-terminated at the next space
    la $s1, req+13
    move $t0, $s1
cgi_term:
    lbu $t1, 0($t0)
    beqz $t1, cgi_termed
    li $t2, ' '
    beq $t1, $t2, cgi_cut
    addiu $t0, $t0, 1
    b cgi_term
cgi_cut:
    sb $zero, 0($t0)
cgi_termed:
    # policy: no ".." in the name
    move $a0, $s1
    la $a1, dotdot
    jal strstr
    bnez $v0, cgi_reject
    # path = sprintf("%s/%s", *cgibin_ptr, name)
    la $a0, path
    la $a1, fmt_path
    lw $a2, cgibin_ptr
    move $a3, $s1
    jal sprintf
    la $a0, path
    jal exec                  # compromise marker when path == /bin/sh
    move $a0, $s0
    la $a1, msg_ok
    jal fdputs
    b cgi_done
cgi_reject:
    move $a0, $s0
    la $a1, msg_reject
    jal fdputs
cgi_done:
    lw $s1, 20($sp)
    lw $s0, 24($sp)
    lw $ra, 28($sp)
    addiu $sp, $sp, 32
    jr $ra

main:
    addiu $sp, $sp, -32
    sw $ra, 28($sp)
    sw $s0, 24($sp)
    jal socket
    move $s0, $v0
    move $a0, $s0
    jal bind
    move $a0, $s0
    jal listen
    move $a0, $s0
    jal accept
    move $s0, $v0
serve_loop:
    move $a0, $s0
    la $a1, req
    li $a2, 1199
    jal recv
    blez $v0, serve_done
    la $t0, req
    addu $t0, $t0, $v0
    sb $zero, 0($t0)          # terminate the request
    la $a0, req
    la $a1, pfx_post
    jal strncmp_pfx
    beqz $v0, is_post
    la $a0, req
    la $a1, pfx_cgi
    jal strncmp_pfx
    beqz $v0, is_cgi
    la $a0, req
    la $a1, pfx_get
    jal strncmp_pfx
    beqz $v0, is_get
    move $a0, $s0
    la $a1, msg_reject
    jal fdputs
    b serve_loop
is_post:
    move $a0, $s0
    jal handle_post
    b serve_loop
is_cgi:
    move $a0, $s0
    jal handle_cgi
    b serve_loop
is_get:
    move $a0, $s0
    la $a1, msg_ok
    jal fdputs
    move $a0, $s0
    la $a1, msg_hello
    jal fdputs
    b serve_loop
serve_done:
    li $v0, 0
    lw $s0, 24($sp)
    lw $ra, 28($sp)
    addiu $sp, $sp, 32
    jr $ra

# strncmp_pfx(s, prefix): 0 when s starts with prefix.
strncmp_pfx:
    addiu $sp, $sp, -32
    sw $ra, 28($sp)
    sw $s0, 24($sp)
    sw $s1, 20($sp)
    move $s0, $a0
    move $s1, $a1
    move $a0, $s1
    jal strlen
    move $a2, $v0
    move $a0, $s0
    move $a1, $s1
    jal strncmp
    lw $s1, 20($sp)
    lw $s0, 24($sp)
    lw $ra, 28($sp)
    addiu $sp, $sp, 32
    jr $ra
)"};
}

}  // namespace ptaint::guest::apps
