// Guest applications: every program the paper's evaluation runs.
//
// Each function returns the application's assembly source; link it with the
// runtime via guest::link_with_runtime().  Attack inputs and success
// predicates live in core/attack.{hpp,cpp} so the programs themselves stay
// honest servers/utilities with period-accurate vulnerabilities.
#pragma once

#include "asmgen/assembler.hpp"

namespace ptaint::guest::apps {

// ---- Figure 2 synthetic vulnerable functions (Section 5.1.1) ----

/// exp1: stack buffer overflow — char buf[10]; scanf("%s", buf);
/// The paper's 24-byte "a" input taints the saved return address and the
/// alert fires at `jr $31` with $31 = 0x61616161.
asmgen::Source exp1_stack();

/// exp2: heap overflow — buf = malloc(8); scanf("%s", buf); free(buf);
/// Overflow taints the next free chunk's links; the alert fires at the
/// unlink inside free() with the tainted forward link dereferenced.
asmgen::Source exp2_heap();

/// exp3: format string — recv(s, buf, 100); printf(buf);
/// "abcd%x%x%x%n" steers ap onto buf; alert at `sw $21,0($3)` with
/// $3 = 0x64636261 inside vfprintf.
asmgen::Source exp3_format();

// ---- real-application reproductions (Section 5.1.2) ----

/// mini WU-FTPD: USER/PASS login, then SITE EXEC with the format-string
/// vulnerability; the non-control-data target `login_uid` is pinned at the
/// paper's address 0x1002bc20.
asmgen::Source wu_ftpd();

/// mini NULL HTTPD: POST handler trusts a negative Content-Length, heap
/// overflow over the free-chunk links; non-control-data target is the
/// CGI root configuration string.
asmgen::Source null_httpd();

/// mini GHTTPD: 200-byte log buffer strcpy overflow rewrites the parsed
/// URL pointer after the "/.." policy check.
asmgen::Source ghttpd();

/// mini traceroute: savestr()'s stale-pool double free; gateway strings
/// come from argv (tainted command line).
asmgen::Source traceroute();

/// mini globbing daemon: LibC glob() tilde-expansion heap overflow
/// (Figure 1's "globbing" category).
asmgen::Source globd();

// ---- Table 4 false-negative scenarios (Section 5.3) ----

/// (A) signed/unsigned confusion defeats the bound check; the negative
/// index corrupts memory without ever tainting a dereferenced pointer.
asmgen::Source fn_int_overflow();

/// (B) overflow flips the adjacent `auth` flag; plain data, no pointer.
asmgen::Source fn_auth_flag();

/// (C) %x%x%x%x format leak prints stack words (incl. a secret) without
/// a tainted dereference.
asmgen::Source fn_format_leak();

// ---- address-leak -> precise-overwrite scenarios (leak direction) ----

/// Telemetry daemon: PEEK ships the raw address of its request buffer to
/// the client (stack-address disclosure); POKE writes a client word at a
/// client address guarded only by a stack-range check.
asmgen::Source leak_telemetry();

/// Session daemon: the malloc'd session record's address doubles as the
/// wire-visible session token (heap-address disclosure); SETU pokes a word
/// at any data-segment address.
asmgen::Source leak_session();

/// Banner daemon: client bytes echo through fdprintf as the format string;
/// "%x" prints the spilled request-buffer pointer in ASCII hex (every digit
/// byte keeps the stack-address plane), then a maintenance poke lands at
/// the leaked-and-computed address.
asmgen::Source leak_banner();

// ---- SPEC 2000 INT surrogates (Table 3 false-positive study) ----

/// Compression (RLE + checksum) — BZIP2 surrogate.
asmgen::Source spec_bzip2();
/// LZ77-style window matcher — GZIP surrogate.
asmgen::Source spec_gzip();
/// Tokenizer + recursive-descent expression evaluator — GCC surrogate.
asmgen::Source spec_gcc();
/// Edge-list shortest path relaxation — MCF surrogate.
asmgen::Source spec_mcf();
/// Word bucketing over a validated hash — PARSER surrogate.
asmgen::Source spec_parser();
/// Net-cost placement hill-climb — VPR surrogate.
asmgen::Source spec_vpr();

}  // namespace ptaint::guest::apps
