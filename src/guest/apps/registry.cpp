#include "guest/apps/registry.hpp"

#include "guest/apps/apps.hpp"

namespace ptaint::guest::apps {

const std::vector<AppEntry>& registry() {
  static const std::vector<AppEntry> kApps = {
      {"exp1", &exp1_stack},
      {"exp2", &exp2_heap},
      {"exp3", &exp3_format},
      {"wu-ftpd", &wu_ftpd},
      {"null-httpd", &null_httpd},
      {"ghttpd", &ghttpd},
      {"traceroute", &traceroute},
      {"globd", &globd},
      {"leak-telemetry", &leak_telemetry},
      {"leak-session", &leak_session},
      {"leak-banner", &leak_banner},
      {"fn-int-overflow", &fn_int_overflow},
      {"fn-auth-flag", &fn_auth_flag},
      {"fn-format-leak", &fn_format_leak},
      {"spec-bzip2", &spec_bzip2},
      {"spec-gzip", &spec_gzip},
      {"spec-gcc", &spec_gcc},
      {"spec-mcf", &spec_mcf},
      {"spec-parser", &spec_parser},
      {"spec-vpr", &spec_vpr},
  };
  return kApps;
}

const AppEntry* find_app(const std::string& name) {
  for (const AppEntry& e : registry()) {
    if (name == e.name) return &e;
  }
  return nullptr;
}

}  // namespace ptaint::guest::apps
