// Address-leak -> precise-overwrite scenarios (the inverse taint direction).
//
// Each server first DISCLOSES an address-space fact over the kernel output
// boundary — a raw stack pointer, a heap pointer recycled as a session
// token, a %x-formatted stack address — and then offers a write primitive
// whose only guard is a sloppy range check.  The range compare untaints the
// incoming bytes (Table 1's compare rule), so the data-taint direction
// never fires on the overwrite: without the leak detector these attacks
// land silently, exactly like the Table 4 false negatives.  With
// TaintPolicy::leak_detection on, the disclosure itself is the alert: the
// output buffer carries stack/heap/text address-provenance planes when it
// crosses SYS_WRITE / SYS_SEND.
//
// The leaked address is what makes the second phase *precise*: the attacker
// computes the exact victim slot (an auth/uid flag) from it instead of
// spraying.  Attack builders in core/attack.cpp run a reconnaissance
// session first (reading the dbg_* drop, like the ghttpd scenario) and then
// splice the computed addresses into the payload.
#include "guest/apps/apps.hpp"

namespace ptaint::guest::apps {

asmgen::Source leak_telemetry() {
  return {"leak_telemetry.s", R"(
# Telemetry daemon: PEEK ships a debug pointer (the raw address of the
# request buffer) to the client; POKE writes a client-supplied word to a
# client-supplied "stack-ish" address.
#
# handle_session frame (288 bytes):
#   sp+24              is_admin flag        <- overwrite target
#   sp+28              debug pointer slot   <- the PEEK leak source
#   sp+32 .. sp+271    reqbuf[240]
#   sp+280/284         saved $s0/$ra
    .data
cmd_peek:  .asciiz "PEEK"
cmd_poke:  .asciiz "POKE"
cmd_quit:  .asciiz "QUIT"
msg_stat:  .asciiz "telemetry: ok\n"
msg_done:  .asciiz "bye\n"
shellpath: .asciiz "/bin/sh"
    .align 2
dbg_reqbuf: .word 0

    .text
# handle_session(conn)
handle_session:
    addiu $sp, $sp, -288
    sw $ra, 284($sp)
    sw $s0, 280($sp)
    move $s0, $a0
    sw $zero, 24($sp)         # is_admin = 0
    addiu $t0, $sp, 32
    sw $t0, 28($sp)           # debug slot: &reqbuf
    sw $t0, dbg_reqbuf        # reconnaissance aid (see header comment)
hs_loop:
    move $a0, $s0
    addiu $a1, $sp, 32
    li $a2, 240
    jal recv
    blez $v0, hs_done
    addiu $t0, $sp, 32
    addu $t0, $t0, $v0
    sb $zero, 0($t0)
    addiu $a0, $sp, 32
    la $a1, cmd_peek
    li $a2, 4
    jal strncmp
    beqz $v0, hs_peek
    addiu $a0, $sp, 32
    la $a1, cmd_poke
    li $a2, 4
    jal strncmp
    beqz $v0, hs_poke
    addiu $a0, $sp, 32
    la $a1, cmd_quit
    li $a2, 4
    jal strncmp
    beqz $v0, hs_done
    move $a0, $s0
    la $a1, msg_stat
    jal fdputs
    b hs_loop
hs_peek:
    # VULN (disclosure): a raw stack address crosses the kernel output
    # boundary.  leak_detection alerts inside send's SYS_SEND.
    move $a0, $s0
    addiu $a1, $sp, 28
    li $a2, 4
    jal send
    b hs_loop
hs_poke:
    # POKE <addr:4> <val:4> — "session scratch" write.  The guard only
    # checks the address is in the stack region, so any leaked stack
    # address passes — including this frame's own is_admin slot.  The
    # range compare untaints the attacker bytes (Table 1), so the store
    # below never trips the data-taint pointer check.
    lw $t1, 36($sp)
    lui $t2, 0x7fe0
    sltu $t3, $t1, $t2
    bnez $t3, hs_loop
    lw $t4, 40($sp)
    sw $t4, 0($t1)
    b hs_loop
hs_done:
    move $a0, $s0
    la $a1, msg_done
    jal fdputs
    lw $t0, 24($sp)
    beqz $t0, hs_ret
    la $a0, shellpath         # flag flipped: "maintenance" shell
    jal exec
hs_ret:
    lw $s0, 280($sp)
    lw $ra, 284($sp)
    addiu $sp, $sp, 288
    jr $ra

main:
    addiu $sp, $sp, -24
    sw $ra, 20($sp)
    sw $s0, 16($sp)
    jal socket
    move $s0, $v0
    move $a0, $s0
    jal bind
    move $a0, $s0
    jal listen
    move $a0, $s0
    jal accept
    move $a0, $v0
    jal handle_session
    li $v0, 0
    lw $s0, 16($sp)
    lw $ra, 20($sp)
    addiu $sp, $sp, 24
    jr $ra
)"};
}

asmgen::Source leak_session() {
  return {"leak_session.s", R"(
# Session daemon: the malloc'd session record's address doubles as the
# wire-visible session token (SESS), and SETU pokes a word at any
# "data-segment" address — the guard passes for every heap address,
# including the record's own uid field.
#
# serve frame (128 bytes):
#   sp+16              token slot: the raw heap pointer  <- SESS leak source
#   sp+32 .. sp+111    reqbuf[80]
#   sp+116/120/124     saved $s1/$s0/$ra
    .data
cmd_sess:  .asciiz "SESS"
cmd_setu:  .asciiz "SETU"
cmd_quit:  .asciiz "QUIT"
msg_hello: .asciiz "session open\n"
msg_done:  .asciiz "closing\n"
shellpath: .asciiz "/bin/sh"
    .align 2
dbg_session: .word 0

    .text
# serve(conn)
serve:
    addiu $sp, $sp, -128
    sw $ra, 124($sp)
    sw $s0, 120($sp)
    sw $s1, 116($sp)
    move $s0, $a0
    li $a0, 64
    jal malloc                # session record {uid, flags, name[56]}
    move $s1, $v0
    sw $s1, dbg_session       # reconnaissance aid
    li $t0, 1000
    sw $t0, 0($s1)            # uid = 1000 (unprivileged)
    sw $s1, 16($sp)           # token slot: the raw heap pointer
    move $a0, $s0
    la $a1, msg_hello
    jal fdputs
sv_loop:
    move $a0, $s0
    addiu $a1, $sp, 32
    li $a2, 80
    jal recv
    blez $v0, sv_done
    addiu $a0, $sp, 32
    la $a1, cmd_sess
    li $a2, 4
    jal strncmp
    beqz $v0, sv_sess
    addiu $a0, $sp, 32
    la $a1, cmd_setu
    li $a2, 4
    jal strncmp
    beqz $v0, sv_setu
    addiu $a0, $sp, 32
    la $a1, cmd_quit
    li $a2, 4
    jal strncmp
    beqz $v0, sv_done
    b sv_loop
sv_sess:
    # VULN (disclosure): the heap pointer ships to the client as the
    # session token.  leak_detection alerts inside send's SYS_SEND.
    move $a0, $s0
    addiu $a1, $sp, 16
    li $a2, 4
    jal send
    b sv_loop
sv_setu:
    # SETU <addr:4> <val:4> — update a "record field".  The guard only
    # rejects addresses below the data segment; the compare untaints the
    # attacker bytes, and the store lands wherever the token pointed.
    lw $t1, 36($sp)
    lui $t2, 0x1000
    sltu $t3, $t1, $t2
    bnez $t3, sv_loop
    lw $t4, 40($sp)
    sw $t4, 0($t1)
    b sv_loop
sv_done:
    move $a0, $s0
    la $a1, msg_done
    jal fdputs
    lw $t0, 0($s1)
    bnez $t0, sv_ret
    la $a0, shellpath         # uid forged to 0: privileged shell
    jal exec
sv_ret:
    lw $s1, 116($sp)
    lw $s0, 120($sp)
    lw $ra, 124($sp)
    addiu $sp, $sp, 128
    jr $ra

main:
    addiu $sp, $sp, -24
    sw $ra, 20($sp)
    sw $s0, 16($sp)
    jal socket
    move $s0, $v0
    move $a0, $s0
    jal bind
    move $a0, $s0
    jal listen
    move $a0, $s0
    jal accept
    move $a0, $v0
    jal serve
    li $v0, 0
    lw $s0, 16($sp)
    lw $ra, 20($sp)
    addiu $sp, $sp, 24
    jr $ra
)"};
}

asmgen::Source leak_banner() {
  return {"leak_banner.s", R"(
# Banner daemon: the greeting is echoed through fdprintf with the client's
# bytes as the format string (wu-ftpd style).  A "%x" directive pops the
# first vararg home slot — where the request-buffer pointer was just
# spilled — and prints a stack address in ASCII hex: every emitted digit
# byte still carries the stack-address provenance plane, so leak_detection
# alerts inside __pf_putc's SYS_WRITE.  The maintenance phase then accepts
# a poke guarded by the same sloppy stack-range check as leak-telemetry.
#
# handle frame (160 bytes):
#   sp+24              audited flag         <- overwrite target
#   sp+32 .. sp+127    reqbuf[96]
#   sp+152/156         saved $s0/$ra
    .data
msg_done:  .asciiz "\nsession closed\n"
shellpath: .asciiz "/bin/sh"
    .align 2
dbg_reqbuf: .word 0

    .text
# handle(conn)
handle:
    addiu $sp, $sp, -160
    sw $ra, 156($sp)
    sw $s0, 152($sp)
    move $s0, $a0
    sw $zero, 24($sp)         # audited = 0
    addiu $t0, $sp, 32
    sw $t0, dbg_reqbuf        # reconnaissance aid
    # phase 1: greeting echo
    move $a0, $s0
    addiu $a1, $sp, 32
    li $a2, 96
    jal recv
    blez $v0, h_done
    addiu $t0, $sp, 32
    addu $t0, $t0, $v0
    sb $zero, 0($t0)
    move $a0, $s0
    addiu $a1, $sp, 32        # VULN: client bytes as the format string
    addiu $a2, $sp, 32        # buffer pointer rides the first vararg slot
    jal fdprintf              # "%x" formats the stack address onto the wire
    # phase 2: maintenance poke, same sloppy stack-range guard
    move $a0, $s0
    addiu $a1, $sp, 32
    li $a2, 96
    jal recv
    blez $v0, h_done
    lw $t1, 36($sp)
    lui $t2, 0x7fe0
    sltu $t3, $t1, $t2
    bnez $t3, h_done
    lw $t4, 40($sp)
    sw $t4, 0($t1)
h_done:
    move $a0, $s0
    la $a1, msg_done
    jal fdputs
    lw $t0, 24($sp)
    beqz $t0, h_ret
    la $a0, shellpath         # audited flag forged: privileged shell
    jal exec
h_ret:
    lw $s0, 152($sp)
    lw $ra, 156($sp)
    addiu $sp, $sp, 160
    jr $ra

main:
    addiu $sp, $sp, -24
    sw $ra, 20($sp)
    sw $s0, 16($sp)
    jal socket
    move $s0, $v0
    move $a0, $s0
    jal bind
    move $a0, $s0
    jal listen
    move $a0, $s0
    jal accept
    move $a0, $v0
    jal handle
    li $v0, 0
    lw $s0, 16($sp)
    lw $ra, 20($sp)
    addiu $sp, $sp, 24
    jr $ra
)"};
}

}  // namespace ptaint::guest::apps
