// mini WU-FTPD (paper Section 5.1.2, Table 2).
//
// Reproduces wu-ftpd 2.6.0's "Site Exec" format-string vulnerability
// (securityfocus bid 1387): the SITE EXEC argument reaches a printf-family
// function as the format string.  The non-control-data attack target is the
// cached numeric identity of the logged-in user, pinned at the paper's
// address 0x1002bc20 so the Table 2 transcript reproduces byte-for-byte:
//
//   site exec \x20\xbc\x02\x10%x%x%x%x%x%x%n
//   Alert: sw $21,0($3)   $3=0x1002bc20
#include "guest/apps/apps.hpp"

namespace ptaint::guest::apps {

asmgen::Source wu_ftpd() {
  return {"ftpd.s", R"(
    .data
msg_greet:  .asciiz "220 FTP server (Version wu-2.6.0(60) Mon Nov 29 10:37:55 CST 2004) ready.\r\n"
msg_pass:   .asciiz "331 Password required for user1 .\r\n"
msg_login:  .asciiz "230 User user1 logged in.\r\n"
msg_badpw:  .asciiz "530 Login incorrect.\r\n"
msg_ok:     .asciiz "200-"
msg_okend:  .asciiz "\r\n200 (end of 'SITE EXEC')\r\n"
msg_bye:    .asciiz "221 Goodbye.\r\n"
msg_what:   .asciiz "500 command not understood.\r\n"
cmd_user:   .asciiz "USER "
cmd_pass:   .asciiz "PASS "
cmd_site:   .asciiz "SITE EXEC "
cmd_stor:   .asciiz "STOR "
cmd_quit:   .asciiz "QUIT"
msg_stor:   .asciiz "150 Ok to send data.\r\n"
msg_stored: .asciiz "226 Transfer complete.\r\n"
msg_denied: .asciiz "550 Permission denied.\r\n"
pfx_etc:    .asciiz "/etc"
storpath:   .space 128
storbuf:    .space 512
good_user:  .asciiz "user1"
good_pass:  .asciiz "xxxxxxx"
cur_user:   .space 64
req:        .space 512

# The logged-in user identity, at the exact address the paper's Table 2
# attack overwrites.  -1 = not authenticated; 1000 = user1.
    .org 0x1002bc20
login_uid:  .word -1

    .text
# strcasecmp-lite prefix test: v0 = 1 when req starts with prefix(a1),
# ASCII case-insensitive on letters.
cmd_is:
    move $t0, $a0
    move $t1, $a1
cmd_is_loop:
    lbu $t3, 0($t1)
    beqz $t3, cmd_is_yes
    lbu $t2, 0($t0)
    beqz $t2, cmd_is_no
    # fold lower to upper
    blt $t2, 'a', cmd_is_folded
    bgt $t2, 'z', cmd_is_folded
    addiu $t2, $t2, -32
cmd_is_folded:
    bne $t2, $t3, cmd_is_no
    addiu $t0, $t0, 1
    addiu $t1, $t1, 1
    b cmd_is_loop
cmd_is_yes:
    li $v0, 1
    jr $ra
cmd_is_no:
    li $v0, 0
    jr $ra

# handle_site_exec(conn, cmdtext)
#
# Mirrors wu-ftpd's lreply(200, cmd): the user-controlled text is passed as
# the format string.  The local copy sits at sp+32 so vfprintf's ap reaches
# its first word after exactly six %x pops (home slots +8/+12, then
# sp+16..28), matching the paper's six-%x attack string.
handle_site_exec:
    addiu $sp, $sp, -160
    sw $ra, 156($sp)
    sw $s0, 152($sp)
    move $s0, $a0
    # copy the command text into the local buffer
    move $t9, $a1
    addiu $a0, $sp, 32
    move $a1, $t9
    jal strcpy
    # "200-" prefix
    move $a0, $s0
    la $a1, msg_ok
    jal fdputs
    # VULN: lreply(200, cmd) — user text as format string
    move $a0, $s0
    addiu $a1, $sp, 32
    jal fdprintf              # <-- detection point: sw $21,0($3) in vfprintf
    move $a0, $s0
    la $a1, msg_okend
    jal fdputs
    lw $s0, 152($sp)
    lw $ra, 156($sp)
    addiu $sp, $sp, 160
    jr $ra

main:
    addiu $sp, $sp, -40
    sw $ra, 36($sp)
    sw $s0, 32($sp)
    sw $s1, 28($sp)
    sw $s2, 24($sp)
    sw $s3, 20($sp)
    jal socket
    move $s1, $v0             # listening socket
    move $a0, $s1
    jal bind
    move $a0, $s1
    jal listen
accept_loop:
    move $a0, $s1
    jal accept
    bltz $v0, server_exit     # no more queued clients
    move $s0, $v0             # connection fd
    # reset per-connection login state
    li $t0, -1
    sw $t0, login_uid
    la $t0, cur_user
    sb $zero, 0($t0)
    move $a0, $s0
    la $a1, msg_greet
    jal fdputs
serve_loop:
    la $t0, req
    li $t1, 0
    sw $t1, 0($t0)
    move $a0, $s0
    la $a1, req
    li $a2, 511
    jal recv
    blez $v0, serve_done
    # strip trailing CR/LF
    la $t0, req
    addu $t1, $t0, $v0
strip_loop:
    beq $t1, $t0, stripped
    lbu $t2, -1($t1)
    li $t3, 13
    beq $t2, $t3, strip_one
    li $t3, 10
    beq $t2, $t3, strip_one
    b stripped
strip_one:
    addiu $t1, $t1, -1
    sb $zero, 0($t1)
    b strip_loop
stripped:
    # dispatch
    la $a0, req
    la $a1, cmd_user
    jal cmd_is
    bnez $v0, do_user
    la $a0, req
    la $a1, cmd_pass
    jal cmd_is
    bnez $v0, do_pass
    la $a0, req
    la $a1, cmd_site
    jal cmd_is
    bnez $v0, do_site
    la $a0, req
    la $a1, cmd_stor
    jal cmd_is
    bnez $v0, do_stor
    la $a0, req
    la $a1, cmd_quit
    jal cmd_is
    bnez $v0, do_quit
    move $a0, $s0
    la $a1, msg_what
    jal fdputs
    b serve_loop

do_user:
    la $a0, cur_user
    la $a1, req+5
    jal strcpy
    move $a0, $s0
    la $a1, msg_pass
    jal fdputs
    b serve_loop

do_pass:
    la $a0, cur_user
    la $a1, good_user
    jal strcmp
    bnez $v0, pass_bad
    la $a0, req+5
    la $a1, good_pass
    jal strcmp
    bnez $v0, pass_bad
    li $t0, 1000
    sw $t0, login_uid         # authenticated as user1 (uid 1000)
    move $a0, $s0
    la $a1, msg_login
    jal fdputs
    b serve_loop
pass_bad:
    move $a0, $s0
    la $a1, msg_badpw
    jal fdputs
    b serve_loop

do_site:
    lw $t0, login_uid
    bltz $t0, site_denied     # must be logged in
    move $a0, $s0
    la $a1, req+10
    jal handle_site_exec
    b serve_loop
site_denied:
    move $a0, $s0
    la $a1, msg_badpw
    jal fdputs
    b serve_loop

do_stor:
    # STOR <path>: uploads overwrite server files.  System paths (/etc/...)
    # require an administrative identity (uid < 100) — the privilege the
    # Table 2 attack forges by overwriting login_uid.
    lw $t0, login_uid
    bltz $t0, site_denied     # not logged in at all
    la $a0, storpath
    la $a1, req+5
    jal strcpy
    la $a0, storpath
    la $a1, pfx_etc
    li $a2, 4
    jal strncmp
    bnez $v0, stor_allowed    # not under /etc: any user may write
    lw $t0, login_uid
    blt $t0, 100, stor_allowed
    move $a0, $s0
    la $a1, msg_denied
    jal fdputs
    b serve_loop
stor_allowed:
    move $a0, $s0
    la $a1, msg_stor
    jal fdputs
    move $a0, $s0
    la $a1, storbuf
    li $a2, 511
    jal recv                  # the file contents (one chunk)
    blez $v0, serve_done
    move $s2, $v0             # byte count
    la $a0, storpath
    li $a1, 1                 # write mode
    jal open
    move $s3, $v0
    move $a0, $s3
    la $a1, storbuf
    move $a2, $s2
    jal write
    move $a0, $s3
    jal close
    move $a0, $s0
    la $a1, msg_stored
    jal fdputs
    b serve_loop

do_quit:
    move $a0, $s0
    la $a1, msg_bye
    jal fdputs
serve_done:
    b accept_loop             # next client connection
server_exit:
    li $v0, 0
    lw $s3, 20($sp)
    lw $s2, 24($sp)
    lw $s1, 28($sp)
    lw $s0, 32($sp)
    lw $ra, 36($sp)
    addiu $sp, $sp, 40
    jr $ra
)"};
}

}  // namespace ptaint::guest::apps
