// mini globbing daemon (Figure 1's fifth memory-corruption category).
//
// Reproduces the LibC glob() vulnerability class (CERT CA-2001-07 /
// wu-ftpd glob heap overflow): tilde expansion copies "/home/<username>"
// into a fixed-size heap buffer without a bound, so a long attacker-chosen
// username overflows into the next free chunk's links, and free()'s unlink
// turns it into the usual arbitrary-write gadget.
//
// The server accepts "LIST <pattern>" over the virtual network, glob()s the
// pattern against a small file table (with '*' suffix matching and '~user'
// expansion) into a 64-byte heap buffer, sends the expansion back, and
// frees the buffer.
#include "guest/apps/apps.hpp"

namespace ptaint::guest::apps {

asmgen::Source globd() {
  return {"globd.s", R"(
    .data
cmd_list:   .asciiz "LIST "
msg_bad:    .asciiz "500 bad command\r\n"
msg_done:   .asciiz "\r\n226 done\r\n"
home_pfx:   .asciiz "/home/"
space_str:  .asciiz " "
file0:      .asciiz "readme.txt"
file1:      .asciiz "notes.txt"
file2:      .asciiz "paper.pdf"
    .align 2
file_tab:   .word file0, file1, file2, 0
req:        .space 512
# The attack target, pinned where the enclosing word's address bytes are
# free of NUL/whitespace so the exploit's link values survive strcat.
    .org 0x1001010c
glob_admin: .word 0

    .text
# match(pattern a0, name a1) -> v0 = 1 on match.  '*' matches any suffix.
match:
m_loop:
    lbu $t0, 0($a0)
    li $t1, '*'
    beq $t0, $t1, m_yes       # '*' swallows the rest
    lbu $t2, 0($a1)
    bne $t0, $t2, m_no
    beqz $t0, m_yes           # both ended
    addiu $a0, $a0, 1
    addiu $a1, $a1, 1
    b m_loop
m_yes:
    li $v0, 1
    jr $ra
m_no:
    li $v0, 0
    jr $ra

# glob(pattern a0, out a1) — expand into `out` with NO bound (the VULN).
glob:
    addiu $sp, $sp, -32
    sw $ra, 28($sp)
    sw $s0, 24($sp)
    sw $s1, 20($sp)
    sw $s2, 16($sp)
    move $s0, $a0             # pattern
    move $s1, $a1             # out buffer
    sb $zero, 0($s1)
    # tilde expansion: "~user..." -> "/home/user..."
    lbu $t0, 0($s0)
    li $t1, '~'
    bne $t0, $t1, glob_files
    move $a0, $s1
    la $a1, home_pfx
    jal strcat
    move $a0, $s1
    addiu $a1, $s0, 1         # the attacker-controlled username
    jal strcat                # <-- unbounded tainted copy into the chunk
    b glob_out
glob_files:
    # match against the file table, appending "name " per hit
    la $s2, file_tab
glob_tab_loop:
    lw $t0, 0($s2)
    beqz $t0, glob_out
    move $a0, $s0
    move $a1, $t0
    jal match
    beqz $v0, glob_next
    move $a0, $s1
    lw $a1, 0($s2)
    jal strcat
    move $a0, $s1
    la $a1, space_str
    jal strcat
glob_next:
    addiu $s2, $s2, 4
    b glob_tab_loop
glob_out:
    lw $s2, 16($sp)
    lw $s1, 20($sp)
    lw $s0, 24($sp)
    lw $ra, 28($sp)
    addiu $sp, $sp, 32
    jr $ra

main:
    addiu $sp, $sp, -32
    sw $ra, 28($sp)
    sw $s0, 24($sp)
    sw $s1, 20($sp)
    jal socket
    move $s0, $v0
    move $a0, $s0
    jal bind
    move $a0, $s0
    jal listen
    move $a0, $s0
    jal accept
    move $s0, $v0
serve_loop:
    move $a0, $s0
    la $a1, req
    li $a2, 511
    jal recv
    blez $v0, serve_done
    la $t0, req
    addu $t0, $t0, $v0
    sb $zero, 0($t0)
    la $a0, req
    la $a1, cmd_list
    jal strncmp5
    bnez $v0, serve_bad
    # LIST <pattern>: expand into a fresh 64-byte buffer
    li $a0, 64
    jal malloc
    move $s1, $v0
    la $a0, req+5
    move $a1, $s1
    jal glob
    move $a0, $s0
    move $a1, $s1
    jal fdputs
    move $a0, $s0
    la $a1, msg_done
    jal fdputs
    move $a0, $s1
    jal free                  # <-- detection point: corrupted unlink
    b serve_loop
serve_bad:
    move $a0, $s0
    la $a1, msg_bad
    jal fdputs
    b serve_loop
serve_done:
    li $v0, 0
    lw $s1, 20($sp)
    lw $s0, 24($sp)
    lw $ra, 28($sp)
    addiu $sp, $sp, 32
    jr $ra

# strncmp5(s, prefix5): 0 when s starts with the 5-char prefix.
strncmp5:
    addiu $sp, $sp, -24
    sw $ra, 20($sp)
    li $a2, 5
    jal strncmp
    lw $ra, 20($sp)
    addiu $sp, $sp, 24
    jr $ra
)"};
}

}  // namespace ptaint::guest::apps
