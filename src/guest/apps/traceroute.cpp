// mini traceroute (paper Section 5.1.2).
//
// Reproduces the LBNL traceroute "-g x -g y" double free (securityfocus
// bid 1739): savestr() manages a pre-allocated pool; main frees the pool
// block after the first gateway is parsed, but savestr keeps writing into
// it.  The stale writes land on the freed chunk's list links (tainted —
// they come from argv), and the next allocation's unlink dereferences the
// attacker bytes.  Under no protection the unlink performs a wild write
// (the takeover primitive); with pointer-taintedness detection the tainted
// link is caught when dereferenced inside the allocator.
#include "guest/apps/apps.hpp"

namespace ptaint::guest::apps {

asmgen::Source traceroute() {
  return {"traceroute.s", R"(
    .data
opt_g:      .asciiz "-g"
msg_use:    .asciiz "usage: traceroute [-g gateway]... host\n"
msg_gw:     .asciiz "gateway registered\n"
    .align 2
pool:       .word 0           # savestr() state
cursor:     .word 0
left:       .word 0
gwhead:     .word 0           # gateway list head

    .text
# char* savestr(s) — copy into the managed pool (the buggy allocator-lite).
savestr:
    addiu $sp, $sp, -32
    sw $ra, 28($sp)
    sw $s0, 24($sp)
    sw $s1, 20($sp)
    move $s0, $a0
    move $a0, $s0
    jal strlen
    addiu $s1, $v0, 1         # len = strlen + 1
    lw $t0, pool
    beqz $t0, savestr_grow
    lw $t0, left
    bgeu $t0, $s1, savestr_copy
savestr_grow:
    li $a0, 64
    jal malloc
    sw $v0, pool
    sw $v0, cursor
    li $t0, 64
    sw $t0, left
savestr_copy:
    lw $t1, cursor            # NOTE: may point into a freed chunk (the bug)
    move $a0, $t1
    move $a1, $s0
    jal strcpy
    lw $t1, cursor
    move $v0, $t1
    addu $t1, $t1, $s1
    sw $t1, cursor
    lw $t0, left
    subu $t0, $t0, $s1
    sw $t0, left
    lw $s1, 20($sp)
    lw $s0, 24($sp)
    lw $ra, 28($sp)
    addiu $sp, $sp, 32
    jr $ra

# register_gateway(str) — cons a list cell (the allocation whose unlink
# walks the corrupted free chunk).
register_gateway:
    addiu $sp, $sp, -32
    sw $ra, 28($sp)
    sw $s0, 24($sp)
    move $s0, $a0
    li $a0, 8
    jal malloc                # <-- detection point: unlink of the chunk
    sw $s0, 0($v0)            #     whose links were overwritten by savestr
    lw $t0, gwhead
    sw $t0, 4($v0)
    sw $v0, gwhead
    li $a0, 1
    la $a1, msg_gw
    jal fdputs
    lw $s0, 24($sp)
    lw $ra, 28($sp)
    addiu $sp, $sp, 32
    jr $ra

main:
    addiu $sp, $sp, -32
    sw $ra, 28($sp)
    sw $s0, 24($sp)
    sw $s1, 20($sp)
    sw $s2, 16($sp)
    move $s0, $a1             # argv
    blt $a0, 2, usage         # argc < 2
    li $s1, 1                 # i = 1
arg_check:
    sll $t0, $s1, 2
    addu $t0, $s0, $t0
    lw $t1, 0($t0)            # argv[i]
    beqz $t1, args_done
    move $a0, $t1
    la $a1, opt_g
    jal strcmp
    bnez $v0, next_arg
    # "-g": the gateway value is argv[i+1]
    addiu $t0, $s1, 1
    sll $t0, $t0, 2
    addu $t0, $s0, $t0
    lw $a0, 0($t0)
    beqz $a0, args_done
    jal savestr
    move $s2, $v0
    move $a0, $s2
    jal register_gateway
    move $a0, $s2
    jal free                  # traceroute releases the savestr block (BUG:
    addiu $s1, $s1, 1         # savestr's pool/cursor still point at it)
next_arg:
    addiu $s1, $s1, 1
    b arg_check
args_done:
    li $v0, 0
    b out
usage:
    li $a0, 1
    la $a1, msg_use
    jal fdputs
    li $v0, 2
out:
    lw $s2, 16($sp)
    lw $s1, 20($sp)
    lw $s0, 24($sp)
    lw $ra, 28($sp)
    addiu $sp, $sp, 32
    jr $ra
)"};
}

}  // namespace ptaint::guest::apps
