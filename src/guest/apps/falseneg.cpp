// Table 4 false-negative scenarios (paper Section 5.3).
#include "guest/apps/apps.hpp"

namespace ptaint::guest::apps {

asmgen::Source fn_int_overflow() {
  return {"fn_intoverflow.s", R"(
# Table 4(A): signed/unsigned confusion.
#   unsigned ui = input; int i = ui;
#   if (i <= MAX_INDEX) array[i] = value;     // signed check passes for
#                                             // negative i; write lands
#                                             // below array.
# The bound-check compare untaints i (it is "validated"), so the negative
# index corrupts `sentinel` without an alert — precisely the class of
# attack the paper reports as undetectable at the hardware level.
    .data
sentinel: .word 0x11111111    # victim word 16 words below array
          .space 60
array:    .word 0, 0, 0, 0, 0, 0, 0, 0
inbuf:    .space 32

    .text
main:
    addiu $sp, $sp, -24
    sw $ra, 20($sp)
    la $a0, inbuf
    jal scanf_str             # e.g. "-16"
    la $a0, inbuf
    jal atoi
    move $t0, $v0             # i (signed)
    bgt $t0, 7, reject        # bound check: i <= 7 ... but signed!
    sll $t0, $t0, 2
    la $t1, array
    addu $t1, $t1, $t0
    li $t2, 0x42424242
    sw $t2, 0($t1)            # array[i] = value — i = -16 hits sentinel
    lw $t3, sentinel
    li $t4, 0x11111111
    beq $t3, $t4, intact
    li $v0, 99                # exit 99: sentinel corrupted, undetected
    b out
intact:
    li $v0, 0
    b out
reject:
    li $v0, 1
out:
    lw $ra, 20($sp)
    addiu $sp, $sp, 24
    jr $ra
)"};
}

asmgen::Source fn_auth_flag() {
  return {"fn_authflag.s", R"(
# Table 4(B): buffer overflow corrupting a critical flag.
#   int auth = 0; do_auth(); gets(buf);     // buf overflow reaches auth
#   if (auth) grant_access();
# No pointer is tainted — the attack flips plain data — so the detector
# stays silent and access is granted without authentication.
    .text
authenticate:                 # always fails in this scenario
    li $v0, 0
    jr $ra

main:
    addiu $sp, $sp, -40
    sw $ra, 36($sp)
    sw $zero, 28($sp)         # auth flag at sp+28
    jal authenticate
    sw $v0, 28($sp)           # auth = 0
    addiu $a0, $sp, 16        # buf[8] at sp+16..23; pad 24..27; auth 28
    jal scanf_str             # overflow: 12+ bytes reach the flag
    lw $t0, 28($sp)
    beqz $t0, deny
    li $v0, 7                 # exit 7: ACCESS GRANTED without auth
    b out
deny:
    li $v0, 0
out:
    lw $ra, 36($sp)
    addiu $sp, $sp, 40
    jr $ra
)"};
}

asmgen::Source fn_format_leak() {
  return {"fn_fmtleak.s", R"(
# Table 4(C): format-string information leak.
#   int secret_key = 0x5ec2e7;  char buf[64];
#   recv(s, buf, 64);  printf(buf);
# %x%x%x%x prints the three home slots and then the first caller word —
# the secret — to the attacker.  Only reads happen through untainted
# pointers, so no alert fires.
    .text
leak:
    addiu $sp, $sp, -96
    sw $ra, 92($sp)
    sw $s0, 88($sp)
    move $s0, $a0
    li $t0, 0x5ec2e7
    sw $t0, 16($sp)           # secret_key: first word above the home area
    move $a0, $s0
    addiu $a1, $sp, 20        # buf at sp+20
    li $a2, 64
    jal recv
    addiu $a0, $sp, 20
    jal printf                # VULN
    li $v0, 0
    lw $s0, 88($sp)
    lw $ra, 92($sp)
    addiu $sp, $sp, 96
    jr $ra

main:
    addiu $sp, $sp, -24
    sw $ra, 20($sp)
    sw $s0, 16($sp)
    jal socket
    move $s0, $v0
    move $a0, $s0
    jal bind
    move $a0, $s0
    jal listen
    move $a0, $s0
    jal accept
    move $a0, $v0
    jal leak
    li $v0, 0
    lw $s0, 16($sp)
    lw $ra, 20($sp)
    addiu $sp, $sp, 24
    jr $ra
)"};
}

}  // namespace ptaint::guest::apps
