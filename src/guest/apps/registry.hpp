// Name -> source-factory registry of every built-in guest application.
// Shared by the analysis CLIs (ptaint-lint, ptaint-prove) so the app list
// exists in exactly one place; the campaign layer keeps its own richer
// tables (attack payloads, workloads) keyed by the same names.
#pragma once

#include <string>
#include <vector>

#include "asmgen/assembler.hpp"

namespace ptaint::guest::apps {

struct AppEntry {
  const char* name;
  asmgen::Source (*make)();
};

/// Every built-in app, in the canonical listing order (experiment apps,
/// servers, false-negative studies, SPEC surrogates).
const std::vector<AppEntry>& registry();

/// Factory for `name`, or nullptr when unknown.
const AppEntry* find_app(const std::string& name);

}  // namespace ptaint::guest::apps
