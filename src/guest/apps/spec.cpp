// SPEC 2000 INT surrogate workloads (paper Table 3 false-positive study).
//
// Each program reads its whole input through SYS_READ — so every input byte
// enters memory tainted — and then runs a compute kernel in the style of
// the corresponding SPEC benchmark.  The kernels are written the way real
// compiled code behaves: input-derived values are validated (compared)
// before they are ever used in address arithmetic, which is exactly the
// compatibility property the paper's compare-untaint rule exists for.
// The ablation bench (bench_ablation_policy) shows several of these
// workloads false-positive once that rule is disabled.
//
// Input protocol shared by all six: the file "/input" on the VFS.
#include "guest/apps/apps.hpp"

namespace {

// Shared prologue: reads /input into `inbuf`, leaves the byte count in
// `incount`.  Each program appends this unit plus its kernel.
constexpr const char* kReadInput = R"(
    .data
path_input: .asciiz "/input"
    .align 2
incount:    .word 0
inbuf:      .space 65536

    .text
# read_input() — slurp /input into inbuf; v0 = total bytes.
read_input:
    addiu $sp, $sp, -32
    sw $ra, 28($sp)
    sw $s0, 24($sp)
    sw $s1, 20($sp)
    la $a0, path_input
    li $a1, 0
    jal open
    move $s0, $v0
    bltz $s0, ri_done_empty
    li $s1, 0                 # total
ri_loop:
    move $a0, $s0
    la $a1, inbuf
    addu $a1, $a1, $s1
    li $a2, 4096
    jal read
    blez $v0, ri_eof
    addu $s1, $s1, $v0
    b ri_loop
ri_eof:
    move $a0, $s0
    jal close
    move $v0, $s1
    sw $s1, incount
    b ri_out
ri_done_empty:
    li $v0, 0
    sw $zero, incount
ri_out:
    lw $s1, 20($sp)
    lw $s0, 24($sp)
    lw $ra, 28($sp)
    addiu $sp, $sp, 32
    jr $ra

# readint(a0 = ptr) — skip non-digits, parse unsigned decimal.
# v0 = value, v1 = pointer past the number.  Digit comparisons validate
# (and so untaint) the value, as any real parser's would.
readint:
    move $v0, $zero
ri_skip:
    lbu $t0, 0($a0)
    beqz $t0, ri_parse_done
    blt $t0, '0', ri_next
    bgt $t0, '9', ri_next
    b ri_digits
ri_next:
    addiu $a0, $a0, 1
    b ri_skip
ri_digits:
    lbu $t0, 0($a0)
    blt $t0, '0', ri_parse_done
    bgt $t0, '9', ri_parse_done
    addiu $t0, $t0, -48
    li $t1, 10
    mul $v0, $v0, $t1
    addu $v0, $v0, $t0
    addiu $a0, $a0, 1
    b ri_digits
ri_parse_done:
    move $3, $a0              # v1 = cursor
    jr $ra
)";

std::string with_read_input(const char* kernel) {
  return std::string(kReadInput) + kernel;
}

}  // namespace

namespace ptaint::guest::apps {

asmgen::Source spec_bzip2() {
  return {"spec_bzip2.s", with_read_input(R"(
# BZIP2 surrogate: run-length compress inbuf into outbuf, decompress into
# decbuf, verify, and checksum — repeated for several passes.
    .data
outbuf: .space 131072
decbuf: .space 65536
    .text
main:
    addiu $sp, $sp, -32
    sw $ra, 28($sp)
    sw $s0, 24($sp)
    sw $s1, 20($sp)
    sw $s2, 16($sp)
    jal read_input
    move $s0, $v0             # n
    blez $s0, bz_exit
    li $s2, 0                 # checksum
    li $s1, 0                 # pass
bz_pass:
    # ---- compress: (count,byte) pairs ----
    la $t0, inbuf             # src
    la $t1, outbuf            # dst
    la $t2, inbuf
    addu $t2, $t2, $s0        # end
bz_c_loop:
    bgeu $t0, $t2, bz_c_done
    lbu $t3, 0($t0)           # run byte
    li $t4, 1                 # run length
bz_run:
    addu $t5, $t0, $t4
    bgeu $t5, $t2, bz_run_done
    bgeu $t4, 255, bz_run_done
    lbu $t6, 0($t5)
    bne $t6, $t3, bz_run_done
    addiu $t4, $t4, 1
    b bz_run
bz_run_done:
    sb $t4, 0($t1)
    sb $t3, 1($t1)
    addiu $t1, $t1, 2
    addu $t0, $t0, $t4
    b bz_c_loop
bz_c_done:
    # ---- decompress and verify ----
    la $t0, outbuf
    move $t7, $t1             # compressed end
    la $t1, decbuf
bz_d_loop:
    bgeu $t0, $t7, bz_d_done
    lbu $t4, 0($t0)           # count
    lbu $t3, 1($t0)           # byte
    addiu $t0, $t0, 2
bz_d_run:
    blez $t4, bz_d_loop
    sb $t3, 0($t1)
    addu $s2, $s2, $t3        # checksum accumulates tainted data (fine)
    addiu $t1, $t1, 1
    addiu $t4, $t4, -1
    b bz_d_run
bz_d_done:
    # verify round trip
    la $t0, inbuf
    la $t1, decbuf
    move $t2, $s0
bz_v_loop:
    blez $t2, bz_v_ok
    lbu $t3, 0($t0)
    lbu $t4, 0($t1)
    bne $t3, $t4, bz_fail
    addiu $t0, $t0, 1
    addiu $t1, $t1, 1
    addiu $t2, $t2, -1
    b bz_v_loop
bz_v_ok:
    addiu $s1, $s1, 1
    blt $s1, 24, bz_pass
bz_exit:
    la $a0, fmt_res
    move $a1, $s2
    jal printf
    li $v0, 0
    b bz_out
bz_fail:
    li $v0, 1
bz_out:
    lw $s2, 16($sp)
    lw $s1, 20($sp)
    lw $s0, 24($sp)
    lw $ra, 28($sp)
    addiu $sp, $sp, 32
    jr $ra
    .data
fmt_res: .asciiz "bzip2_s checksum=%u\n"
)")};
}

asmgen::Source spec_gzip() {
  return {"spec_gzip.s", with_read_input(R"(
# GZIP surrogate: LZ77-style backward match search over a 32-byte window.
    .text
main:
    addiu $sp, $sp, -32
    sw $ra, 28($sp)
    sw $s0, 24($sp)
    sw $s1, 20($sp)
    jal read_input
    move $s0, $v0             # n
    li $s1, 0                 # total matched length
    sw $zero, 12($sp)         # pass counter
gz_pass:
    la $t0, inbuf             # i (cursor)
    la $t9, inbuf
    addu $t9, $t9, $s0        # end
gz_outer:
    bgeu $t0, $t9, gz_pass_end
    # search window [i-32, i) for the longest match (cap 8)
    addiu $t1, $t0, -32       # j
    la $t2, inbuf
    bgeu $t1, $t2, gz_win_ok
    move $t1, $t2
gz_win_ok:
    li $t3, 0                 # best
gz_search:
    bgeu $t1, $t0, gz_search_done
    li $t4, 0                 # k: match length
gz_match:
    bgeu $t4, 8, gz_match_done
    addu $t5, $t0, $t4
    bgeu $t5, $t9, gz_match_done
    addu $t6, $t1, $t4
    lbu $t7, 0($t5)
    lbu $t8, 0($t6)
    bne $t7, $t8, gz_match_done
    addiu $t4, $t4, 1
    b gz_match
gz_match_done:
    bleu $t4, $t3, gz_no_better
    move $t3, $t4
gz_no_better:
    addiu $t1, $t1, 1
    b gz_search
gz_search_done:
    addu $s1, $s1, $t3
    bgtz $t3, gz_skip_match
    li $t3, 1
gz_skip_match:
    addu $t0, $t0, $t3
    b gz_outer
gz_pass_end:
    lw $t0, 12($sp)
    addiu $t0, $t0, 1
    sw $t0, 12($sp)
    blt $t0, 6, gz_pass
gz_done:
    la $a0, fmt_res
    move $a1, $s1
    jal printf
    li $v0, 0
    lw $s1, 20($sp)
    lw $s0, 24($sp)
    lw $ra, 28($sp)
    addiu $sp, $sp, 32
    jr $ra
    .data
fmt_res: .asciiz "gzip_s matched=%u\n"
)")};
}

asmgen::Source spec_gcc() {
  return {"spec_gcc.s", with_read_input(R"(
# GCC surrogate: tokenizer + left-associative expression evaluator over
# lines of the form "12 + 34 * 5 - 6 ;", accumulating the results.
    .text
main:
    addiu $sp, $sp, -32
    sw $ra, 28($sp)
    sw $s0, 24($sp)
    sw $s1, 20($sp)
    sw $s2, 16($sp)
    jal read_input
    blez $v0, gc_done
    sw $v0, 12($sp)           # input length
    sw $zero, 8($sp)          # pass counter
    li $s1, 0                 # accumulator over expressions
gc_pass:
    la $s0, inbuf             # cursor
    la $t0, inbuf
    lw $t1, 12($sp)
    addu $s2, $t0, $t1        # end
gc_expr:
    bgeu $s0, $s2, gc_pass_end
    move $a0, $s0
    jal readint
    move $s0, $3
    move $t9, $v0             # current value
gc_op:
    bgeu $s0, $s2, gc_expr_end
    lbu $t0, 0($s0)
    addiu $s0, $s0, 1
    li $t1, ' '
    beq $t0, $t1, gc_op
    li $t1, ';'
    beq $t0, $t1, gc_expr_end
    li $t1, '+'
    beq $t0, $t1, gc_plus
    li $t1, '-'
    beq $t0, $t1, gc_minus
    li $t1, '*'
    beq $t0, $t1, gc_times
    beqz $t0, gc_pass_end
    b gc_op                   # skip newlines / unknown bytes
gc_plus:
    move $a0, $s0
    jal readint
    move $s0, $3
    addu $t9, $t9, $v0
    b gc_op
gc_minus:
    move $a0, $s0
    jal readint
    move $s0, $3
    subu $t9, $t9, $v0
    b gc_op
gc_times:
    move $a0, $s0
    jal readint
    move $s0, $3
    mul $t9, $t9, $v0
    b gc_op
gc_expr_end:
    addu $s1, $s1, $t9
    b gc_expr
gc_pass_end:
    lw $t0, 8($sp)
    addiu $t0, $t0, 1
    sw $t0, 8($sp)
    blt $t0, 32, gc_pass
gc_done:
    la $a0, fmt_res
    move $a1, $s1
    jal printf
    li $v0, 0
    lw $s2, 16($sp)
    lw $s1, 20($sp)
    lw $s0, 24($sp)
    lw $ra, 28($sp)
    addiu $sp, $sp, 32
    jr $ra
    .data
fmt_res: .asciiz "gcc_s sum=%d\n"
)")};
}

asmgen::Source spec_mcf() {
  return {"spec_mcf.s", with_read_input(R"(
# MCF surrogate: Bellman-Ford over an edge list "N M  u v w  u v w ...".
# Node ids are bound-checked (validated) before indexing, as mcf's own
# array accesses are.
    .data
    .align 2
dist:  .space 256             # up to 64 nodes
edges: .space 12288           # up to 1024 edges * (u,v,w)
    .text
main:
    addiu $sp, $sp, -40
    sw $ra, 36($sp)
    sw $s0, 32($sp)
    sw $s1, 28($sp)
    sw $s2, 24($sp)
    sw $s3, 20($sp)
    jal read_input
    blez $v0, mc_fail
    la $s0, inbuf
    move $a0, $s0
    jal readint
    move $s0, $3
    move $s1, $v0             # N
    bgtz $s1, mc_n_ok
    b mc_fail
mc_n_ok:
    bleu $s1, 64, mc_n_ok2
    li $s1, 64
mc_n_ok2:
    move $a0, $s0
    jal readint
    move $s0, $3
    move $s2, $v0             # M
    bleu $s2, 1024, mc_m_ok
    li $s2, 1024
mc_m_ok:
    # parse edges
    la $s3, edges
    move $t9, $s2
mc_parse:
    blez $t9, mc_init
    move $a0, $s0
    jal readint
    move $s0, $3
    # validate node id: u < N
    bgeu $v0, $s1, mc_clip_u
    b mc_u_ok
mc_clip_u:
    li $v0, 0
mc_u_ok:
    sw $v0, 0($s3)
    move $a0, $s0
    jal readint
    move $s0, $3
    bgeu $v0, $s1, mc_clip_v
    b mc_v_ok
mc_clip_v:
    li $v0, 0
mc_v_ok:
    sw $v0, 4($s3)
    move $a0, $s0
    jal readint
    move $s0, $3
    sw $v0, 8($s3)
    addiu $s3, $s3, 12
    addiu $t9, $t9, -1
    b mc_parse
mc_init:
    sw $zero, 12($sp)         # outer repetition counter
mc_round:
    # dist[0] = 0, others = 1e9
    li $t0, 0
    la $t1, dist
    li $t2, 0x3b9aca00        # 1e9
mc_init_loop:
    bgeu $t0, $s1, mc_relax_all
    sll $t3, $t0, 2
    addu $t3, $t1, $t3
    sw $t2, 0($t3)
    addiu $t0, $t0, 1
    b mc_init_loop
mc_relax_all:
    la $t1, dist
    sw $zero, 0($t1)
    li $s3, 0                 # pass
mc_pass:
    bgeu $s3, $s1, mc_report
    la $t0, edges             # e
    move $t9, $s2
mc_relax:
    blez $t9, mc_pass_end
    lw $t1, 0($t0)            # u (validated at parse)
    lw $t2, 4($t0)            # v
    lw $t3, 8($t0)            # w
    la $t4, dist
    sll $t5, $t1, 2
    addu $t5, $t4, $t5
    lw $t6, 0($t5)            # dist[u]
    sll $t5, $t2, 2
    addu $t5, $t4, $t5
    lw $t7, 0($t5)            # dist[v]
    addu $t8, $t6, $t3
    bgeu $t8, $t7, mc_no_improve
    sw $t8, 0($t5)
mc_no_improve:
    addiu $t0, $t0, 12
    addiu $t9, $t9, -1
    b mc_relax
mc_pass_end:
    addiu $s3, $s3, 1
    b mc_pass
mc_report:
    lw $t0, 12($sp)
    addiu $t0, $t0, 1
    sw $t0, 12($sp)
    blt $t0, 8, mc_round
    # print dist[N-1]
    la $t0, dist
    addiu $t1, $s1, -1
    sll $t1, $t1, 2
    addu $t0, $t0, $t1
    lw $a1, 0($t0)
    la $a0, fmt_res
    jal printf
    li $v0, 0
    b mc_out
mc_fail:
    li $v0, 1
mc_out:
    lw $s3, 20($sp)
    lw $s2, 24($sp)
    lw $s1, 28($sp)
    lw $s0, 32($sp)
    lw $ra, 36($sp)
    addiu $sp, $sp, 40
    jr $ra
    .data
fmt_res: .asciiz "mcf_s dist=%u\n"
)")};
}

asmgen::Source spec_parser() {
  return {"spec_parser.s", with_read_input(R"(
# PARSER surrogate: word bucketing.  The hash of each word is reduced
# modulo a prime and bound-checked before indexing the bucket table —
# the validation real parsers perform on table indices.
    .data
    .align 2
buckets: .space 1024          # 256 counters
    .text
main:
    addiu $sp, $sp, -32
    sw $ra, 28($sp)
    sw $s0, 24($sp)
    sw $s1, 20($sp)
    sw $s2, 16($sp)
    jal read_input
    blez $v0, pa_done
    sw $v0, 12($sp)           # input length
    sw $zero, 8($sp)          # pass counter
    li $s1, 0                 # word count
pa_pass:
    la $s0, inbuf             # cursor
    la $t0, inbuf
    lw $t1, 12($sp)
    addu $s2, $t0, $t1        # end
pa_word:
    bgeu $s0, $s2, pa_pass_end
    lbu $t0, 0($s0)
    # skip separators
    li $t1, 'a'
    blt $t0, $t1, pa_skip
    li $t1, 'z'
    bgt $t0, $t1, pa_skip
    # hash the word
    li $t2, 0                 # hash
pa_hash:
    bgeu $s0, $s2, pa_bucket
    lbu $t0, 0($s0)
    li $t1, 'a'
    blt $t0, $t1, pa_bucket
    li $t1, 'z'
    bgt $t0, $t1, pa_bucket
    li $t1, 31
    mul $t2, $t2, $t1
    addu $t2, $t2, $t0
    addiu $s0, $s0, 1
    b pa_hash
pa_bucket:
    addiu $s1, $s1, 1
    li $t1, 251
    remu $t2, $t2, $t1        # bucket = hash % 251 (tainted remainder)
    bgeu $t2, 256, pa_word    # bound check (validates/untaints the index)
    sll $t2, $t2, 2
    la $t3, buckets
    addu $t3, $t3, $t2
    lw $t4, 0($t3)
    addiu $t4, $t4, 1
    sw $t4, 0($t3)
    b pa_word
pa_skip:
    addiu $s0, $s0, 1
    b pa_word
pa_pass_end:
    lw $t0, 8($sp)
    addiu $t0, $t0, 1
    sw $t0, 8($sp)
    blt $t0, 24, pa_pass
pa_done:
    # checksum the buckets
    li $t0, 0
    li $t5, 0
    la $t3, buckets
pa_sum:
    bgeu $t0, 256, pa_report
    lw $t4, 0($t3)
    addu $t5, $t5, $t4
    mul $t5, $t5, $t0         # order-sensitive mixing (may overflow: fine)
    addiu $t3, $t3, 4
    addiu $t0, $t0, 1
    b pa_sum
pa_report:
    la $a0, fmt_res
    move $a1, $s1
    move $a2, $t5
    jal printf
    li $v0, 0
    lw $s2, 16($sp)
    lw $s1, 20($sp)
    lw $s0, 24($sp)
    lw $ra, 28($sp)
    addiu $sp, $sp, 32
    jr $ra
    .data
fmt_res: .asciiz "parser_s words=%u mix=%u\n"
)")};
}

asmgen::Source spec_vpr() {
  return {"spec_vpr.s", with_read_input(R"(
# VPR surrogate: placement hill-climb.  Nets are pairs of cell ids from the
# input (bound-checked); a deterministic LCG proposes swaps; swaps that
# reduce total wirelength are kept.
    .data
    .align 2
pos:  .space 256              # 64 cell positions
nets: .space 2048             # up to 256 nets * (u,v)
nnet: .word 0
seed: .word 12345
    .text
# cost() -> v0: sum |pos[u]-pos[v]| over nets.
cost:
    li $v0, 0
    la $t0, nets
    lw $t1, nnet
cost_loop:
    blez $t1, cost_done
    lw $t2, 0($t0)
    lw $t3, 4($t0)
    la $t4, pos
    sll $t5, $t2, 2
    addu $t5, $t4, $t5
    lw $t6, 0($t5)
    sll $t5, $t3, 2
    addu $t5, $t4, $t5
    lw $t7, 0($t5)
    subu $t8, $t6, $t7
    bgez $t8, cost_abs
    negu $t8, $t8
cost_abs:
    addu $v0, $v0, $t8
    addiu $t0, $t0, 8
    addiu $t1, $t1, -1
    b cost_loop
cost_done:
    jr $ra

# rand64() -> v0 in [0,64): LCG (untainted stream).
rand64:
    lw $t0, seed
    li $t1, 1103515245
    mul $t0, $t0, $t1
    addiu $t0, $t0, 12345
    sw $t0, seed
    srl $v0, $t0, 16
    andi $v0, $v0, 63
    jr $ra

main:
    addiu $sp, $sp, -40
    sw $ra, 36($sp)
    sw $s0, 32($sp)
    sw $s1, 28($sp)
    sw $s2, 24($sp)
    sw $s3, 20($sp)
    jal read_input
    blez $v0, vp_fail
    la $s0, inbuf
    # init positions
    li $t0, 0
    la $t1, pos
vp_init:
    bgeu $t0, 64, vp_parse
    sll $t2, $t0, 2
    addu $t2, $t1, $t2
    sw $t0, 0($t2)
    addiu $t0, $t0, 1
    b vp_init
vp_parse:
    move $a0, $s0
    jal readint
    move $s0, $3
    move $s1, $v0             # number of nets
    bleu $s1, 256, vp_nets_ok
    li $s1, 256
vp_nets_ok:
    sw $s1, nnet
    la $s2, nets
    move $s3, $s1
vp_parse_loop:
    blez $s3, vp_anneal
    move $a0, $s0
    jal readint
    move $s0, $3
    bgeu $v0, 64, vp_clip_u
    b vp_pu
vp_clip_u:
    li $v0, 0
vp_pu:
    sw $v0, 0($s2)
    move $a0, $s0
    jal readint
    move $s0, $3
    bgeu $v0, 64, vp_clip_v
    b vp_pv
vp_clip_v:
    li $v0, 0
vp_pv:
    sw $v0, 4($s2)
    addiu $s2, $s2, 8
    addiu $s3, $s3, -1
    b vp_parse_loop
vp_anneal:
    jal cost
    move $s2, $v0             # current cost
    li $s3, 0                 # iteration
vp_iter:
    bgeu $s3, 4000, vp_report
    jal rand64
    move $s0, $v0             # cell a   (s0 reused: input cursor done)
    jal rand64
    move $s1, $v0             # cell b
    # swap pos[a], pos[b]
    la $t0, pos
    sll $t1, $s0, 2
    addu $t1, $t0, $t1
    sll $t2, $s1, 2
    addu $t2, $t0, $t2
    lw $t3, 0($t1)
    lw $t4, 0($t2)
    sw $t4, 0($t1)
    sw $t3, 0($t2)
    jal cost
    bleu $v0, $s2, vp_keep
    # revert
    la $t0, pos
    sll $t1, $s0, 2
    addu $t1, $t0, $t1
    sll $t2, $s1, 2
    addu $t2, $t0, $t2
    lw $t3, 0($t1)
    lw $t4, 0($t2)
    sw $t4, 0($t1)
    sw $t3, 0($t2)
    b vp_next
vp_keep:
    move $s2, $v0
vp_next:
    addiu $s3, $s3, 1
    b vp_iter
vp_report:
    la $a0, fmt_res
    move $a1, $s2
    jal printf
    li $v0, 0
    b vp_out
vp_fail:
    li $v0, 1
vp_out:
    lw $s3, 20($sp)
    lw $s2, 24($sp)
    lw $s1, 28($sp)
    lw $s0, 32($sp)
    lw $ra, 36($sp)
    addiu $sp, $sp, 40
    jr $ra
    .data
fmt_res: .asciiz "vpr_s cost=%u\n"
)")};
}

}  // namespace ptaint::guest::apps
