// ptaint-campaign — parallel evaluation-campaign driver.
//
//   ptaint-campaign <ablation|falseneg|coverage> [options]
//
// Expands the named campaign into its app x payload x policy job matrix,
// runs it on a work-stealing thread pool (each job forks a Machine from a
// shared post-boot snapshot), and prints the same report text the original
// serial bench printed — byte-identical regardless of worker count or
// completion order.
//
// Options:
//   --workers N     worker threads (default 4)
//   --serial        run the matrix serially through the original
//                   entry points instead of the engine
//   --spec-scale N  SPEC surrogate input scale (ablation; default 1)
//   --json PATH     also write per-job results as JSON (includes per-phase
//                   build/restore/run/judge timings and COW page counters)
//   --csv PATH      also write per-job results as CSV (same extra columns)
//   --summary       also print the per-policy verdict tally
//   --time          print wall-clock, per-phase, machine-pool and
//                   snapshot-cache statistics to stderr
//   --check         run BOTH engine and serial reference, diff every
//                   verdict/alert, print the speedup; exit 1 on mismatch
//   --elide         engine machines run with static check-elision on
//                   (with --check the serial reference stays dynamic-only,
//                   proving elision changes no verdict)
//   --engine E      step | superblock | jit: pin the parallel side's
//                   engine (default resolves PTAINT_ENGINE, then
//                   superblock).  The serial reference always runs the
//                   step interpreter, so --check with the default engine
//                   is a cross-engine verdict-identity check.
//   --static-check  bidirectional cross-validation: every dynamic
//                   pointer-taint alert must carry a value-set-prover
//                   witness (forward) and must not sit in the gen-2
//                   elision table (backward); exit 1 on either violation
//
// Exit codes (docs/CAMPAIGN.md):
//   0  every job ended in a guest-side outcome (ok/fault/budget)
//   1  verdict mismatch under --check, or a --static-check violation
//   2  at least one job ended in a harness error
//   3  at least one job timed out (and none harness-errored)
//   4  usage error (bad campaign name, bad option, unwritable sidecar)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/summary_cache.hpp"
#include "campaign/campaigns.hpp"
#include "campaign/executor.hpp"
#include "campaign/report.hpp"

using namespace ptaint;
using namespace ptaint::campaign;

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void usage() {
  std::cerr
      << "usage: ptaint-campaign <ablation|falseneg|coverage> [options]\n"
         "  --workers N   worker threads (default 4)\n"
         "  --serial      serial reference run (no engine)\n"
         "  --spec-scale N  SPEC input scale (ablation)\n"
         "  --json PATH / --csv PATH   machine-readable results\n"
         "  --summary     per-policy verdict tally\n"
         "  --time        wall-clock + executor stats on stderr\n"
         "  --check       engine vs serial verdict diff + speedup\n"
         "  --elide       run engine machines with static check-elision\n"
         "  --engine E    step | superblock | jit (parallel side; serial\n"
         "                reference is always the step interpreter)\n"
         "  --static-check  bidirectional static/dynamic consistency\n";
  std::exit(4);
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "ptaint-campaign: cannot write " << path << "\n";
    std::exit(4);
  }
  out << contents;
}

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string campaign = argv[1];
  {
    bool known = false;
    for (const std::string& name : campaign_names()) {
      if (name == campaign) known = true;
    }
    if (!known) usage();
  }

  Executor::Config config;
  int spec_scale = 1;
  bool serial = false;
  bool check = false;
  bool elide = false;
  bool want_static_check = false;
  bool timing = false;
  bool summary = false;
  std::optional<cpu::Engine> engine;
  std::string json_path, csv_path;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--workers") {
      config.workers = static_cast<int>(std::strtol(value().c_str(), nullptr, 0));
      if (config.workers < 1) usage();
    } else if (arg == "--spec-scale") {
      spec_scale = static_cast<int>(std::strtol(value().c_str(), nullptr, 0));
      if (spec_scale < 1) usage();
    } else if (arg == "--serial") {
      serial = true;
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--elide") {
      elide = true;
    } else if (arg == "--engine") {
      const std::string name = value();
      if (name == "step") {
        engine = cpu::Engine::kStep;
      } else if (name == "superblock") {
        engine = cpu::Engine::kSuperblock;
      } else if (name == "jit") {
        engine = cpu::Engine::kJit;
      } else {
        usage();
      }
    } else if (arg == "--static-check") {
      want_static_check = true;
    } else if (arg == "--time") {
      timing = true;
    } else if (arg == "--summary") {
      summary = true;
    } else if (arg == "--json") {
      json_path = value();
    } else if (arg == "--csv") {
      csv_path = value();
    } else {
      usage();
    }
  }

  std::vector<JobResult> results;
  double engine_s = 0.0, serial_s = 0.0;
  SnapshotCache cache;
  Executor executor(config);

  if (!serial || check) {
    const auto t0 = Clock::now();
    const std::vector<Job> jobs =
        make_jobs(campaign, cache, spec_scale, elide, engine);
    results = executor.run(jobs);
    engine_s = seconds_since(t0);
  }
  if (serial || check) {
    const auto t0 = Clock::now();
    std::vector<JobResult> reference = run_serial_reference(campaign, spec_scale);
    serial_s = seconds_since(t0);
    if (check) {
      const std::vector<std::string> diffs = diff_verdicts(results, reference);
      if (!diffs.empty()) {
        std::cerr << "ptaint-campaign: engine and serial reference disagree:\n";
        for (const std::string& d : diffs) std::cerr << "  " << d << "\n";
        return 1;
      }
      std::fprintf(stderr,
                   "check: %zu verdicts identical; engine %.2fs (%d workers) "
                   "vs serial %.2fs (%.2fx)\n",
                   results.size(), engine_s, config.workers, serial_s,
                   engine_s > 0 ? serial_s / engine_s : 0.0);
    } else {
      results = std::move(reference);
    }
  }

  if (want_static_check) {
    const StaticCheckReport sc = static_check(campaign, results, spec_scale);
    if (!sc.missed.empty()) {
      std::cerr << "ptaint-campaign: dynamic alerts without a prover "
                   "witness (check-elision would be unsound):\n";
      for (const std::string& line : sc.missed) {
        std::cerr << "  " << line << "\n";
      }
    }
    if (!sc.elided_alerts.empty()) {
      std::cerr << "ptaint-campaign: dynamic alerts at gen-2-elided sites "
                   "(the elided detector would skip them):\n";
      for (const std::string& line : sc.elided_alerts) {
        std::cerr << "  " << line << "\n";
      }
    }
    if (!sc.missed.empty() || !sc.elided_alerts.empty()) return 1;
    std::fprintf(stderr,
                 "static-check: %zu dynamic alert(s), all witnessed by the "
                 "prover, none at an elided site\n",
                 sc.alerts_checked);
  }

  std::fputs(format_campaign(campaign, results).c_str(), stdout);
  if (summary) std::fputs(console_summary(results).c_str(), stdout);
  // Sidecar files carry the per-phase timings and COW page counters; the
  // stdout report stays a deterministic function of the verdicts.
  const ReportOptions report_opts{/*with_timing=*/true};
  if (!json_path.empty()) write_file(json_path, to_json(results, report_opts));
  if (!csv_path.empty()) write_file(csv_path, to_csv(results, report_opts));
  if (timing) {
    const Executor::Stats& s = executor.stats();
    std::fprintf(stderr,
                 "time: engine %.2fs (%d workers, %llu jobs, %llu steals, "
                 "%llu retries)%s\n",
                 engine_s, config.workers,
                 static_cast<unsigned long long>(s.jobs),
                 static_cast<unsigned long long>(s.steals),
                 static_cast<unsigned long long>(s.retries),
                 serial || check
                     ? (", serial " + std::to_string(serial_s) + "s").c_str()
                     : "");
    std::fprintf(stderr,
                 "time: phases build %.1fms restore %.1fms run %.1fms "
                 "judge %.1fms (summed across workers)\n",
                 s.build_ms, s.restore_ms, s.run_ms, s.judge_ms);
    std::fprintf(stderr,
                 "time: machines built %llu reused %llu\n",
                 static_cast<unsigned long long>(s.machine_builds),
                 static_cast<unsigned long long>(s.machine_reuses));
    const SnapshotCache::Stats cs = cache.stats();
    const unsigned long long requests = cs.hits + cs.misses;
    std::fprintf(stderr,
                 "time: snapshot cache %llu built (%.1fms) %llu hits "
                 "%llu misses (%.1f%% hit rate), %llu pages mapped, "
                 "%llu shared\n",
                 static_cast<unsigned long long>(cs.builds), cs.build_ms,
                 static_cast<unsigned long long>(cs.hits),
                 static_cast<unsigned long long>(cs.misses),
                 requests ? 100.0 * static_cast<double>(cs.hits) /
                                static_cast<double>(requests)
                          : 0.0,
                 static_cast<unsigned long long>(cs.snapshot_pages),
                 static_cast<unsigned long long>(cs.shared_pages));
    if (cs.store_enabled) {
      const ptaint::mem::PageStore::Stats& ps = cs.store;
      std::fprintf(
          stderr,
          "time: snapshot store %llu canonical pages for %llu refs "
          "(%.2fx dedup), %llu hot %llu compressed (%.2fx) %llu on disk, "
          "%llu rehydrations (%.1fms, %llu from disk)\n",
          static_cast<unsigned long long>(ps.canonical_pages),
          static_cast<unsigned long long>(ps.interned_refs),
          ps.canonical_pages ? static_cast<double>(ps.interned_refs) /
                                   static_cast<double>(ps.canonical_pages)
                             : 0.0,
          static_cast<unsigned long long>(ps.hot_pages),
          static_cast<unsigned long long>(ps.compressed_pages),
          ps.compressed_bytes ? static_cast<double>(ps.uncompressed_bytes) /
                                    static_cast<double>(ps.compressed_bytes)
                              : 0.0,
          static_cast<unsigned long long>(ps.disk_pages),
          static_cast<unsigned long long>(cs.rehydrations), cs.hydrate_ms,
          static_cast<unsigned long long>(cs.disk_rehydrations));
    }
    const analysis::CacheStats as = analysis::SummaryCache::instance().stats();
    std::fprintf(stderr,
                 "time: analysis cache %llu lookups %llu hits %llu warm "
                 "(%llu fallbacks) %llu cold, %llu fns invalidated, "
                 "%.1fms analyzing\n",
                 static_cast<unsigned long long>(as.lookups),
                 static_cast<unsigned long long>(as.hits),
                 static_cast<unsigned long long>(as.warm_hits),
                 static_cast<unsigned long long>(as.warm_fallbacks),
                 static_cast<unsigned long long>(as.cold_misses),
                 static_cast<unsigned long long>(as.invalidated_fns),
                 static_cast<double>(as.analysis_micros) / 1000.0);
  }
  return exit_code_for(results);
}
