// ptaint-run — command-line driver for the simulator.
//
//   ptaint-run [options] program.s [more.s ...]
//
// Assembles the given sources (linked with the guest runtime unless
// --no-runtime), loads them into a Machine, wires up inputs, runs, and
// reports.  Exit codes are distinct per outcome so scripts can branch on
// them without parsing stderr:
//   0  guest ran to completion and exited 0
//   1  guest ran to completion but exited nonzero
//   2  security alert (pointer-taintedness detection fired)
//   3  guest fault or exhausted instruction budget
//   4  usage or assembly error (the guest never ran)
//
// Options:
//   --stdin TEXT          guest stdin bytes
//   --stdin-file PATH     guest stdin from a host file
//   --vfs GUEST=HOST      install a VFS file from a host file
//   --session CHUNKS      network client session; '|' separates recv chunks
//   --arg V               append a guest argv entry (repeatable)
//   --policy MODE         paper (default) | control | off
//   --no-compare-untaint  disable the Table 1 compare rule
//   --per-word            per-word taint granularity
//   --protect SYM:LEN     annotate a data symbol as never-tainted
//   --trace N             print the last N instructions at stop
//   --profile             print the per-function profile
//   --pipeline            enable the timing model and print its stats
//   --max-instr N         instruction budget (default 200M)
//   --no-elide            skip the static analyzer; run every dynamic check
//   --engine E            step | superblock | jit (default superblock)
//   --engine-stats        print superblock/JIT/taint-summary observability
//                         stats
//   --quiet               suppress everything except guest stdout
//
// Static check-elision is ON by default: the src/analysis pass proves most
// dereference sites can never carry a tainted address and the interpreter
// skips those checks.  Detection verdicts are identical either way (the
// cli_elide test pins this); --no-elide keeps the dynamic-only
// configuration reproducible.
//
// The execution engine defaults to the superblock translator (DESIGN.md §9),
// which is verdict- and statistics-identical to the reference step
// interpreter; --engine step (or PTAINT_ENGINE=step) pins the reference
// path.  --engine jit (DESIGN.md §12) compiles hot superblocks to host
// x86-64 on top of the same translation cache; on non-x86-64 hosts it
// falls back to superblock with a warning.  Trace/profile/pipeline runs
// use the step path regardless, since they subscribe to per-retire events.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/machine.hpp"
#include "guest/runtime.hpp"

using namespace ptaint;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "ptaint-run: cannot open " << path << "\n";
    std::exit(4);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

[[noreturn]] void usage() {
  std::cerr << "usage: ptaint-run [options] program.s [more.s ...]\n"
               "run ptaint-run --help for the option list\n";
  std::exit(4);
}

}  // namespace

int main(int argc, char** argv) {
  core::MachineConfig cfg;
  cfg.static_elision = true;  // proven-clean sites skip the dynamic check
  std::vector<asmgen::Source> sources;
  std::string stdin_data;
  std::vector<std::pair<std::string, std::string>> vfs_files;
  std::vector<std::vector<std::string>> sessions;
  std::vector<std::pair<std::string, uint32_t>> protects;
  bool with_runtime = true;
  bool quiet = false;
  bool want_profile = false;
  bool listing_only = false;
  bool engine_stats = false;
  size_t trace_n = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--help") {
      std::printf("%s", R"(ptaint-run: pointer-taintedness detection simulator
usage: ptaint-run [options] program.s [more.s ...]
  --stdin TEXT | --stdin-file PATH
  --vfs GUEST=HOST      install VFS file
  --session CHUNKS      '|'-separated recv chunks (repeatable)
  --arg V               guest argv entry (repeatable)
  --policy MODE         paper | control | off
  --no-compare-untaint  ablation: keep validated data tainted
  --per-word            word-granular taint
  --nx                  NX baseline: fetch outside .text alerts
  --aslr BITS / --aslr-seed S   stack randomization baseline
  --protect SYM:LEN     never-tainted annotation on a data symbol
  --trace N / --profile / --pipeline
  --listing             print the assembled text segment and exit
  --no-elide            disable static check-elision (check every site)
  --engine E            step | superblock | jit (default; also PTAINT_ENGINE)
  --engine-stats        block cache, fusion, JIT and clean-page counters
  --max-instr N / --quiet
exit codes: 0 clean exit, 1 nonzero guest exit, 2 security alert,
            3 fault/instruction budget, 4 usage or assembly error
)");
      return 0;
    } else if (arg == "--stdin") {
      stdin_data = value();
    } else if (arg == "--stdin-file") {
      stdin_data = read_file(value());
    } else if (arg == "--vfs") {
      const std::string spec = value();
      const size_t eq = spec.find('=');
      if (eq == std::string::npos) usage();
      vfs_files.emplace_back(spec.substr(0, eq),
                             read_file(spec.substr(eq + 1)));
    } else if (arg == "--session") {
      sessions.push_back(split(value(), '|'));
    } else if (arg == "--arg") {
      cfg.argv.push_back(value());
    } else if (arg == "--policy") {
      const std::string mode = value();
      if (mode == "paper") {
        cfg.policy.mode = cpu::DetectionMode::kPointerTaint;
      } else if (mode == "control") {
        cfg.policy.mode = cpu::DetectionMode::kControlDataOnly;
      } else if (mode == "off") {
        cfg.policy.mode = cpu::DetectionMode::kOff;
      } else {
        usage();
      }
    } else if (arg == "--no-compare-untaint") {
      cfg.policy.compare_untaints = false;
    } else if (arg == "--per-word") {
      cfg.policy.per_word_taint = true;
    } else if (arg == "--nx") {
      cfg.policy.nx_protection = true;
    } else if (arg == "--aslr") {
      cfg.aslr_entropy_bits =
          static_cast<int>(std::strtol(value().c_str(), nullptr, 0));
    } else if (arg == "--aslr-seed") {
      cfg.aslr_seed =
          static_cast<uint32_t>(std::strtoul(value().c_str(), nullptr, 0));
    } else if (arg == "--protect") {
      const std::string spec = value();
      const size_t colon = spec.find(':');
      if (colon == std::string::npos) usage();
      protects.emplace_back(
          spec.substr(0, colon),
          static_cast<uint32_t>(std::strtoul(spec.c_str() + colon + 1,
                                             nullptr, 0)));
    } else if (arg == "--trace") {
      trace_n = std::strtoul(value().c_str(), nullptr, 0);
    } else if (arg == "--profile") {
      want_profile = true;
    } else if (arg == "--pipeline") {
      cfg.pipeline_model = true;
    } else if (arg == "--max-instr") {
      cfg.max_instructions = std::strtoull(value().c_str(), nullptr, 0);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--listing") {
      listing_only = true;
    } else if (arg == "--engine") {
      const std::string engine = value();
      if (engine == "step") {
        cfg.engine = cpu::Engine::kStep;
      } else if (engine == "superblock") {
        cfg.engine = cpu::Engine::kSuperblock;
      } else if (engine == "jit") {
        cfg.engine = cpu::Engine::kJit;
      } else {
        usage();
      }
    } else if (arg == "--engine-stats") {
      engine_stats = true;
    } else if (arg == "--no-elide") {
      cfg.static_elision = false;
    } else if (arg == "--no-runtime") {
      with_runtime = false;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "ptaint-run: unknown option " << arg << "\n";
      usage();
    } else {
      sources.push_back({arg, read_file(arg)});
    }
  }
  if (sources.empty()) usage();

  std::vector<asmgen::Source> units;
  if (with_runtime) units = guest::runtime();
  for (auto& s : sources) units.push_back(std::move(s));

  core::Machine machine(cfg);
  try {
    machine.load_sources(units);
  } catch (const asmgen::AssemblyError& e) {
    std::cerr << "assembly failed:\n" << e.what();
    return 4;
  }
  if (listing_only) {
    std::fputs(asmgen::listing(machine.program()).c_str(), stdout);
    return 0;
  }
  if (trace_n > 0) machine.enable_trace(trace_n);
  if (want_profile) machine.enable_profile();
  machine.os().set_stdin(stdin_data);
  for (auto& [guest, contents] : vfs_files) {
    machine.os().vfs().install(guest, contents);
  }
  for (auto& chunks : sessions) machine.os().net().add_session(chunks);
  for (auto& [sym, len] : protects) {
    try {
      machine.protect_symbol(sym, len);
    } catch (const std::out_of_range&) {
      std::cerr << "ptaint-run: unknown symbol '" << sym << "'\n";
      return 4;
    }
  }

  core::RunReport report = machine.run();

  std::fputs(report.stdout_text.c_str(), stdout);
  if (!quiet) {
    std::fprintf(stderr, "---\n");
    switch (report.stop) {
      case cpu::StopReason::kExit:
        std::fprintf(stderr, "exit %d after %llu instructions\n",
                     report.exit_status,
                     static_cast<unsigned long long>(
                         report.cpu_stats.instructions));
        break;
      case cpu::StopReason::kSecurityAlert:
        std::fprintf(stderr, "SECURITY ALERT: %s\n",
                     report.alert_line().c_str());
        break;
      case cpu::StopReason::kFault:
        std::fprintf(stderr, "FAULT: %s\n", report.fault.c_str());
        break;
      default:
        std::fprintf(stderr, "stopped (instruction budget exhausted?)\n");
        break;
    }
    for (size_t i = 0; i < report.net_transcripts.size(); ++i) {
      std::fprintf(stderr, "session %zu transcript:\n%s\n", i,
                   report.net_transcripts[i].c_str());
    }
    if (trace_n > 0) {
      std::fprintf(stderr, "trace tail:\n%s", report.trace_tail.c_str());
    }
    if (want_profile) {
      std::fprintf(stderr, "%s", machine.profiler()->format().c_str());
    }
    if (report.pipeline_stats) {
      const auto& p = *report.pipeline_stats;
      std::fprintf(stderr,
                   "pipeline: %llu cycles, IPC %.3f, load-use stalls %llu, "
                   "flush cycles %llu\n",
                   static_cast<unsigned long long>(p.cycles), p.ipc(),
                   static_cast<unsigned long long>(p.load_use_stalls),
                   static_cast<unsigned long long>(p.branch_flush_cycles));
    }
  }
  if (engine_stats) {
    const cpu::SuperblockStats& sb = machine.cpu().superblock_stats();
    const mem::TaintedMemory::QueryStats& q = machine.memory().query_stats();
    const auto ull = [](uint64_t v) {
      return static_cast<unsigned long long>(v);
    };
    const cpu::Engine eng = machine.cpu().engine();
    std::fprintf(stderr, "engine: %s\n",
                 eng == cpu::Engine::kJit          ? "jit"
                 : eng == cpu::Engine::kSuperblock ? "superblock"
                                                   : "step");
    std::fprintf(stderr,
                 "blocks: %llu cached (%llu translated, %llu invalidated), "
                 "avg %.1f insts/block\n",
                 ull(sb.blocks), ull(sb.blocks_translated),
                 ull(sb.invalidations),
                 sb.blocks ? static_cast<double>(sb.guest_instructions) /
                                 static_cast<double>(sb.blocks)
                           : 0.0);
    std::fprintf(
        stderr, "fusion: %llu fused pairs, %.1f%% of cached instructions\n",
        ull(sb.fused_pairs),
        sb.guest_instructions
            ? 100.0 * 2.0 * static_cast<double>(sb.fused_pairs) /
                  static_cast<double>(sb.guest_instructions)
            : 0.0);
    std::fprintf(stderr,
                 "retired: %llu in superblocks, %llu via step fallback "
                 "(%llu block entries)\n",
                 ull(sb.block_retired), ull(sb.step_retired),
                 ull(sb.blocks_entered));
    if (eng == cpu::Engine::kJit) {
      const cpu::JitStats& js = machine.cpu().jit_stats();
      std::fprintf(stderr,
                   "jit: %llu blocks compiled (%llu code bytes), "
                   "%llu host entries, %llu retired in host code\n",
                   ull(js.blocks_compiled), ull(js.code_bytes),
                   ull(js.host_entries), ull(js.host_retired));
      std::fprintf(stderr,
                   "jit bailouts: %llu syscall, %llu break, %llu arena-full; "
                   "%llu compiled blocks invalidated\n",
                   ull(js.bailout_syscall), ull(js.bailout_break),
                   ull(js.bailout_arena_full), ull(js.invalidations));
    }
    std::fprintf(
        stderr, "clean-page loads: %llu of %llu (%.1f%% hit rate)\n",
        ull(q.clean_page_loads), ull(q.loads),
        q.loads ? 100.0 * static_cast<double>(q.clean_page_loads) /
                      static_cast<double>(q.loads)
                : 0.0);
  }
  if (report.stop == cpu::StopReason::kSecurityAlert) return 2;
  if (report.stop != cpu::StopReason::kExit) return 3;  // fault / budget
  return report.exit_status == 0 ? 0 : 1;
}
