// ptaint-client — command-line client for the ptaint-serve daemon.
//
//   ptaint-client --socket PATH <subcommand> [options]
//
// Subcommands:
//   submit <app> <payload> [--policy P] [--tenant T] [--engine E]
//          [--elide] [--timeout-ms N] [--wait]
//       submit one job; --wait streams until its verdict event arrives
//       and prints the verdict row (JSON) to stdout
//   campaign <ablation|falseneg|coverage> [--spec-scale N] [--tenant T]
//          [--engine E] [--elide] [--render|--rows]
//       submit every cell of a named campaign, stream the verdicts, and
//       (--render, default) print the batch CLI's report text —
//       byte-identical to `ptaint-campaign <name>` stdout — or (--rows)
//       print the raw verdict rows in matrix order
//   status                        print the daemon's status reply
//   result <id>                   print one job's state (and row if done)
//   cancel <id>                   cancel a queued job
//   drain                         stop intake, wait until idle
//   shutdown                      ask the daemon to exit
//   load [--jobs N] [--connections N] [--batch N] [--spec-scale N]
//       drive the ablation attack cells as a sustained load and print
//       jobs/sec and p50/p99 latency
//
// Exit codes: 0 ok, 1 daemon reported an error event, 2 at least one
// streamed verdict was a harness error, 3 at least one timed out,
// 4 usage/connection error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaigns.hpp"
#include "campaign/report.hpp"
#include "serve/client.hpp"
#include "serve/json.hpp"

using namespace ptaint;
using namespace ptaint::serve;

namespace {

[[noreturn]] void usage() {
  std::cerr
      << "usage: ptaint-client --socket PATH <subcommand> [options]\n"
         "  submit <app> <payload> [--policy P] [--tenant T] [--engine E]\n"
         "         [--elide] [--timeout-ms N] [--wait]\n"
         "  campaign <name> [--spec-scale N] [--tenant T] [--engine E]\n"
         "         [--elide] [--render|--rows]\n"
         "  status | result <id> | cancel <id> | drain | shutdown\n"
         "  load [--jobs N] [--connections N] [--batch N] [--spec-scale N]\n";
  std::exit(4);
}

std::string spec_json(const std::string& app, const std::string& payload,
                      const std::string& policy, const std::string& tenant,
                      const std::string& engine, bool elide,
                      uint64_t timeout_ms) {
  std::ostringstream ss;
  ss << "{\"app\": \"" << campaign::json_escape(app) << "\", \"payload\": \""
     << campaign::json_escape(payload) << "\", \"policy\": \""
     << campaign::json_escape(policy) << "\", \"tenant\": \""
     << campaign::json_escape(tenant) << "\"";
  if (!engine.empty()) {
    ss << ", \"engine\": \"" << campaign::json_escape(engine) << "\"";
  }
  if (elide) ss << ", \"elide\": true";
  if (timeout_ms != 0) ss << ", \"timeout_ms\": " << timeout_ms;
  ss << "}";
  return ss.str();
}

campaign::JobStatus status_from_name(const std::string& name) {
  if (name == "ok") return campaign::JobStatus::kOk;
  if (name == "guest-fault") return campaign::JobStatus::kGuestFault;
  if (name == "budget-exhausted") {
    return campaign::JobStatus::kBudgetExhausted;
  }
  if (name == "timeout") return campaign::JobStatus::kTimeout;
  return campaign::JobStatus::kHarnessError;
}

/// A streamed verdict row back into the result cell the report layer
/// renders from (labels and verdicts only; reports never need timings).
campaign::JobResult result_from_row(const JsonValue& row) {
  campaign::JobResult r;
  r.app = row.get_string("app");
  r.payload = row.get_string("payload");
  r.policy = row.get_string("policy");
  r.status = status_from_name(row.get_string("status"));
  r.verdict = row.get_string("verdict");
  r.detail = row.get_string("detail");
  r.error = row.get_string("error");
  r.attempts = static_cast<int>(row.get_u64("attempts"));
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::vector<std::string> rest;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket") {
      if (i + 1 >= argc) usage();
      socket_path = argv[++i];
    } else {
      rest.push_back(arg);
    }
  }
  if (socket_path.empty() || rest.empty()) usage();
  const std::string cmd = rest[0];

  // Per-subcommand options.
  std::string policy = "paper", tenant = "default", engine;
  bool elide = false, wait = false, render = true;
  uint64_t timeout_ms = 0, jobs = 2000;
  int connections = 4, batch = 32, spec_scale = 1;
  std::vector<std::string> positional;
  for (size_t i = 1; i < rest.size(); ++i) {
    const std::string& arg = rest[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= rest.size()) usage();
      return rest[++i];
    };
    if (arg == "--policy") {
      policy = value();
    } else if (arg == "--tenant") {
      tenant = value();
    } else if (arg == "--engine") {
      engine = value();
    } else if (arg == "--elide") {
      elide = true;
    } else if (arg == "--wait") {
      wait = true;
    } else if (arg == "--render") {
      render = true;
    } else if (arg == "--rows") {
      render = false;
    } else if (arg == "--timeout-ms") {
      timeout_ms = std::strtoull(value().c_str(), nullptr, 0);
    } else if (arg == "--jobs") {
      jobs = std::strtoull(value().c_str(), nullptr, 0);
    } else if (arg == "--connections") {
      connections = static_cast<int>(std::strtol(value().c_str(), nullptr, 0));
    } else if (arg == "--batch") {
      batch = static_cast<int>(std::strtol(value().c_str(), nullptr, 0));
    } else if (arg == "--spec-scale") {
      spec_scale = static_cast<int>(std::strtol(value().c_str(), nullptr, 0));
      if (spec_scale < 1) usage();
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
    } else {
      positional.push_back(arg);
    }
  }

  try {
    if (cmd == "load") {
      // The seed load: every detectable attack cell of the ablation matrix
      // under the paper policy — small guests, one shared snapshot each.
      std::vector<std::string> specs;
      for (const auto& cell : campaign::campaign_cells("ablation", spec_scale)) {
        if (cell.app != "attack") continue;
        if (cell.policy != "paper (all rules on)") continue;
        specs.push_back(spec_json(cell.app, cell.payload, cell.policy, tenant,
                                  engine, elide, timeout_ms));
      }
      const LoadStats stats =
          run_load(socket_path, specs, jobs, connections, batch);
      std::printf(
          "load: %llu jobs in %.2fs = %.0f jobs/s (p50 %.2fms, p99 %.2fms, "
          "%llu errors)\n",
          static_cast<unsigned long long>(stats.jobs), stats.wall_s,
          stats.jobs_per_sec, stats.p50_ms, stats.p99_ms,
          static_cast<unsigned long long>(stats.errors));
      return stats.errors == 0 ? 0 : 1;
    }

    Client client(socket_path);

    if (cmd == "status") {
      std::cout << client.request("{\"cmd\": \"status\"}") << "\n";
      return 0;
    }
    if (cmd == "drain") {
      std::cout << client.request("{\"cmd\": \"drain\"}") << "\n";
      return 0;
    }
    if (cmd == "shutdown") {
      std::cout << client.request("{\"cmd\": \"shutdown\"}") << "\n";
      return 0;
    }
    if (cmd == "result" || cmd == "cancel") {
      if (positional.size() != 1) usage();
      std::cout << client.request("{\"cmd\": \"" + cmd +
                                  "\", \"id\": " + positional[0] + "}")
                << "\n";
      return 0;
    }

    if (cmd == "submit") {
      if (positional.size() != 2) usage();
      std::ostringstream req;
      req << "{\"cmd\": \"submit\"";
      if (wait) req << ", \"stream\": true";
      req << ", \"job\": "
          << spec_json(positional[0], positional[1], policy, tenant, engine,
                       elide, timeout_ms)
          << "}";
      const std::string reply = client.request(req.str());
      std::cout << reply << "\n";
      if (reply.find("\"event\": \"error\"") != std::string::npos) return 1;
      if (wait) {
        const auto event = client.read_line();
        if (!event) {
          std::cerr << "ptaint-client: daemon hung up before the verdict\n";
          return 4;
        }
        std::cout << *event << "\n";
        const JsonValue v = JsonValue::parse(*event);
        if (const JsonValue* row = v.get("result")) {
          return campaign::exit_code_for({result_from_row(*row)});
        }
      }
      return 0;
    }

    if (cmd == "campaign") {
      if (positional.size() != 1) usage();
      const std::string name = positional[0];
      const std::vector<campaign::CellRef> cells =
          campaign::campaign_cells(name, spec_scale);
      std::ostringstream req;
      req << "{\"cmd\": \"submit\", \"stream\": true, \"jobs\": [";
      for (size_t i = 0; i < cells.size(); ++i) {
        req << (i ? ", " : "")
            << spec_json(cells[i].app, cells[i].payload, cells[i].policy,
                         tenant, engine, elide, timeout_ms);
      }
      req << "]}";
      const std::string accepted = client.request(req.str());
      if (accepted.find("\"event\": \"accepted\"") == std::string::npos) {
        std::cerr << "ptaint-client: " << accepted << "\n";
        return 1;
      }
      // Accepted ids correspond to cells in submission order; verdicts
      // stream back in completion order and are re-slotted by id.
      const JsonValue accepted_json = JsonValue::parse(accepted);
      std::vector<uint64_t> ids;
      for (const JsonValue& id : accepted_json.get("ids")->as_array()) {
        ids.push_back(id.as_u64());
      }
      std::map<uint64_t, size_t> slot;
      for (size_t i = 0; i < ids.size(); ++i) slot[ids[i]] = i;
      std::vector<campaign::JobResult> results(cells.size());
      std::vector<std::string> rows(cells.size());
      for (size_t seen = 0; seen < ids.size(); ++seen) {
        const auto line = client.read_line();
        if (!line) {
          std::cerr << "ptaint-client: daemon hung up mid-stream\n";
          return 4;
        }
        const JsonValue event = JsonValue::parse(*line);
        if (event.get_string("event") != "verdict") {
          std::cerr << "ptaint-client: " << *line << "\n";
          return 1;
        }
        const auto it = slot.find(event.get_u64("id"));
        if (it == slot.end()) continue;
        const JsonValue* row = event.get("result");
        if (row == nullptr) continue;
        campaign::JobResult r = result_from_row(*row);
        r.index = it->second;
        results[it->second] = std::move(r);
        rows[it->second] = *line;
      }
      if (render) {
        std::fputs(campaign::format_campaign(name, results).c_str(), stdout);
      } else {
        for (const std::string& row : rows) std::cout << row << "\n";
      }
      return campaign::exit_code_for(results);
    }
  } catch (const std::exception& e) {
    std::cerr << "ptaint-client: " << e.what() << "\n";
    return 4;
  }
  usage();
}
