// ptaint-prove — memory-aware value-set taint prover front end.
//
//   ptaint-prove [options] program.s [more.s ...]
//   ptaint-prove --app NAME
//
// Assembles the input (linked with the guest runtime unless --no-runtime)
// and runs both static analyzers: the register-only pass (gen-1) and the
// value-set prover (gen-2, src/analysis/vsa.cpp).  For every dereference
// site the prover cannot clear it prints a *witness*: a shortest
// source-rooted may-taint path (syscall input / argv / TAINTSET /
// unmodeled stack read -> memory cells -> registers -> the dereference).
// A witness whose chain could not be connected to any taint source is
// *unexplained* — on a non-attack program that indicates an analysis
// modeling gap, and the CI sweep requires zero of them.
//
// With --leaks the tool reports the inverse taint direction instead: every
// kernel-output site (SYS_WRITE / SYS_SEND syscall instruction) is either
// proven clean — no byte of the output buffer can carry stack/heap/text
// address provenance, so the dynamic leak check is elided there — or gets a
// leak witness tracing an address introduction to the output buffer.
//
// Exit codes:
//   0  every witness is source-rooted (or there are no may-tainted sites)
//   1  unexplained witnesses present
//   4  usage or assembly error
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/summary_cache.hpp"
#include "analysis/taint_analyzer.hpp"
#include "analysis/vsa.hpp"
#include "guest/apps/registry.hpp"
#include "guest/runtime.hpp"

using namespace ptaint;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "ptaint-prove: cannot open " << path << "\n";
    std::exit(4);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

asmgen::Source app_source(const std::string& name) {
  if (const guest::apps::AppEntry* e = guest::apps::find_app(name)) {
    return e->make();
  }
  std::cerr << "ptaint-prove: unknown app '" << name << "'; known:";
  for (const auto& e : guest::apps::registry()) std::cerr << " " << e.name;
  std::cerr << "\n";
  std::exit(4);
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

[[noreturn]] void usage() {
  std::cerr << "usage: ptaint-prove [options] program.s [more.s ...]\n"
               "       ptaint-prove --app NAME\n"
               "run ptaint-prove --help for the option list\n";
  std::exit(4);
}

struct Stats {
  size_t sites = 0;       // reachable dereference sites
  size_t gen1_clean = 0;  // proven clean by the register-only analyzer
  size_t gen2_clean = 0;  // proven clean by the unioned gen-2 table
  size_t may_sites = 0;   // sites the prover cannot clear (VSA verdict)
  size_t unexplained = 0; // may sites with no source-rooted witness
};

/// Emit one witness list as a JSON array (shared by both directions).
void print_witnesses_json(const analysis::Cfg& cfg,
                          const std::vector<analysis::Witness>& witnesses) {
  auto func_name = [&](uint32_t pc) -> std::string {
    const int f = cfg.function_at(pc);
    return f >= 0 ? cfg.functions()[static_cast<size_t>(f)].name : "?";
  };
  bool first = true;
  for (const analysis::Witness& w : witnesses) {
    std::printf("%s\n    {\"site_pc\": \"0x%08x\", \"site\": \"%s\", "
                "\"function\": \"%s\", \"complete\": %s, \"steps\": [",
                first ? "" : ",", w.site_pc,
                json_escape(isa::disassemble(cfg.inst_at(w.site_pc),
                                             w.site_pc))
                    .c_str(),
                json_escape(func_name(w.site_pc)).c_str(),
                w.complete ? "true" : "false");
    first = false;
    bool sfirst = true;
    for (const analysis::WitnessStep& step : w.steps) {
      std::printf("%s\n      {\"pc\": \"0x%08x\", \"event\": \"%s\", "
                  "\"loc\": \"%s\"}",
                  sfirst ? "" : ",", step.pc,
                  json_escape(step.event).c_str(),
                  json_escape(step.loc).c_str());
      sfirst = false;
    }
    std::printf("%s]}", sfirst ? "" : "\n    ");
  }
  std::printf("%s]", first ? "" : "\n  ");
}

/// Print witnesses as text (shared by both directions); returns nothing,
/// the caller prints the trailing count line.
void print_witnesses_text(const analysis::Cfg& cfg,
                          const std::vector<analysis::Witness>& witnesses) {
  auto func_name = [&](uint32_t pc) -> std::string {
    const int f = cfg.function_at(pc);
    return f >= 0 ? cfg.functions()[static_cast<size_t>(f)].name : "?";
  };
  for (const analysis::Witness& w : witnesses) {
    std::printf("\nwitness for %08x: %s  [in %s]%s\n", w.site_pc,
                isa::disassemble(cfg.inst_at(w.site_pc), w.site_pc).c_str(),
                func_name(w.site_pc).c_str(),
                w.complete ? "" : "  (UNEXPLAINED: no source-rooted "
                                  "path found)");
    size_t n = 1;
    for (const analysis::WitnessStep& step : w.steps) {
      std::printf("  %2zu. %08x  %-44s -> %s\n", n++, step.pc,
                  step.event.c_str(), step.loc.c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<asmgen::Source> sources;
  cpu::TaintPolicy policy;  // paper defaults
  std::string app_name = "program";
  bool with_runtime = true;
  bool json = false;
  bool quiet = false;
  bool witnesses = true;
  bool leaks = false;
  int jobs = 1;
  std::vector<std::string> may_publish;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--help") {
      std::printf("%s", R"(ptaint-prove: value-set taint prover for PTA-32 assembly
usage: ptaint-prove [options] program.s [more.s ...]
  --app NAME            prove a built-in guest app (exp1, wu-ftpd, ...)
  --list-apps           print the known app names, one per line, and exit
  --no-runtime          do not link the guest runtime
  --leaks               report the address-leak direction: kernel-output
                        sites proven clean vs. possibly leaking, with leak
                        witnesses (address introduction -> output buffer)
  --may-publish FUNC    annotate FUNC (repeatable) as a legitimate pointer
                        publisher: its output sites count as explained,
                        not leaking (mirrors MachineConfig::may_publish)
  --jobs N              iterate the value-set fixpoint on N threads
                        (results are byte-identical to --jobs 1)
  --json                emit the report as JSON (schema: docs/ANALYSIS.md)
  --no-witnesses        verdicts and elision stats only (faster)
  --no-compare-untaint  analyze under the ablated compare rule
  --quiet               suppress the report, set the exit code only
exit codes: 0 all witnesses source-rooted, 1 unexplained witnesses,
            4 usage or assembly error
)");
      return 0;
    } else if (arg == "--app") {
      app_name = value();
      sources.push_back(app_source(app_name));
    } else if (arg == "--list-apps") {
      for (const auto& e : guest::apps::registry()) {
        std::printf("%s\n", e.name);
      }
      return 0;
    } else if (arg == "--no-runtime") {
      with_runtime = false;
    } else if (arg == "--leaks") {
      leaks = true;
    } else if (arg == "--may-publish") {
      may_publish.push_back(value());
    } else if (arg == "--jobs") {
      jobs = std::atoi(value().c_str());
      if (jobs < 1) jobs = 1;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--no-witnesses") {
      witnesses = false;
    } else if (arg == "--no-compare-untaint") {
      policy.compare_untaints = false;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "ptaint-prove: unknown option " << arg << "\n";
      usage();
    } else {
      app_name = arg;
      sources.push_back({arg, read_file(arg)});
    }
  }
  if (sources.empty()) usage();

  std::vector<asmgen::Source> units;
  if (with_runtime) units = guest::runtime();
  for (auto& s : sources) units.push_back(std::move(s));

  asmgen::Program program;
  try {
    program = asmgen::assemble(units);
  } catch (const asmgen::AssemblyError& e) {
    std::cerr << "assembly failed:\n" << e.what();
    return 4;
  }

  const analysis::Cfg cfg(program);
  analysis::VsaOptions opts;
  opts.witnesses = witnesses;
  try {
    opts.may_publish =
        analysis::resolve_publish_ranges(program, may_publish, true);
  } catch (const std::out_of_range& e) {
    std::cerr << "ptaint-prove: " << e.what() << "\n";
    return 4;
  }
  analysis::SummaryCache& cache = analysis::SummaryCache::instance();
  if (jobs > 1) cache.set_jobs(jobs);
  const std::shared_ptr<const analysis::CachedAnalysis> cached =
      cache.analyze(program, policy, opts);
  const analysis::TaintAnalysis& g1 = cached->g1;
  const analysis::VsaAnalysis& g2 = cached->g2;

  Stats st;
  for (size_t i = 0; i < g1.sites.size(); ++i) {
    const analysis::DerefSite& s1 = g1.sites[i];
    const analysis::DerefSite& s2 = g2.sites[i];
    if (!s1.reachable && !s2.reachable) continue;
    ++st.sites;
    // Use the elision bitmaps so the counts match the table the
    // interpreter installs (they include sites the prover shows dead).
    const size_t idx = cfg.index_of(s1.pc);
    const bool bit1 = g1.elision[idx] != 0;
    const bool bit2 = g2.elision[idx] != 0;
    if (bit1) ++st.gen1_clean;
    if (bit1 || bit2) ++st.gen2_clean;
    if (s2.reachable && may_be_tainted(s2.may_taint)) ++st.may_sites;
  }
  for (const analysis::Witness& w : g2.witnesses) {
    if (!w.complete) ++st.unexplained;
  }

  // Leak-direction stats (always computed; only reported under --leaks).
  size_t leak_unexplained = 0;
  for (const analysis::Witness& w : g2.leak_witnesses) {
    if (!w.complete) ++leak_unexplained;
  }

  if (leaks) {
    if (json && !quiet) {
      std::printf("{\n");
      std::printf("  \"schema\": 2,\n");
      std::printf("  \"app\": \"%s\",\n", json_escape(app_name).c_str());
      std::printf("  \"direction\": \"leak\",\n");
      std::printf("  \"output_sites\": %zu,\n", g2.output_sites);
      std::printf("  \"leak_clean\": %zu,\n", g2.leak_clean);
      std::printf("  \"leak_possible\": %zu,\n", g2.leak_possible);
      std::printf("  \"leak_annotated\": %zu,\n", g2.leak_annotated);
      std::printf("  \"unexplained\": %zu,\n", leak_unexplained);
      std::printf("  \"analysis_cache\": %s,\n", cache.stats().json(false).c_str());
      std::printf("  \"witnesses\": [");
      print_witnesses_json(cfg, g2.leak_witnesses);
      std::printf("\n}\n");
    } else if (!quiet) {
      std::printf("%zu kernel-output site(s): %zu leak check(s) elided "
                  "(%.1f%%), %zu may leak an address, %zu annotated "
                  "may-publish\n",
                  g2.output_sites, g2.leak_clean,
                  g2.output_sites
                      ? 100.0 * static_cast<double>(g2.leak_clean) /
                            static_cast<double>(g2.output_sites)
                      : 0.0,
                  g2.leak_possible, g2.leak_annotated);
      std::printf("%s", g2.leak_report(cfg).c_str());
      if (witnesses) {
        print_witnesses_text(cfg, g2.leak_witnesses);
        std::printf("\n%zu leak witness(es), %zu unexplained\n",
                    g2.leak_witnesses.size(), leak_unexplained);
      }
    }
    return leak_unexplained == 0 ? 0 : 1;
  }

  if (json && !quiet) {
    std::printf("{\n");
    std::printf("  \"schema\": 2,\n");
    std::printf("  \"app\": \"%s\",\n", json_escape(app_name).c_str());
    std::printf("  \"sites\": %zu,\n", st.sites);
    std::printf("  \"gen1_clean\": %zu,\n", st.gen1_clean);
    std::printf("  \"gen2_clean\": %zu,\n", st.gen2_clean);
    std::printf("  \"may_tainted\": %zu,\n", st.may_sites);
    std::printf("  \"unexplained\": %zu,\n", st.unexplained);
    std::printf("  \"output_sites\": %zu,\n", g2.output_sites);
    std::printf("  \"leak_clean\": %zu,\n", g2.leak_clean);
    std::printf("  \"analysis_cache\": %s,\n", cache.stats().json(false).c_str());
    std::printf("  \"witnesses\": [");
    print_witnesses_json(cfg, g2.witnesses);
    std::printf("\n}\n");
  } else if (!quiet) {
    std::printf("%zu reachable dereference site(s): %zu proven clean by the "
                "register-only analyzer, %zu by the gen-2 table "
                "(%.1f%% -> %.1f%% elidable), %zu may-tainted\n",
                st.sites, st.gen1_clean, st.gen2_clean,
                st.sites ? 100.0 * static_cast<double>(st.gen1_clean) /
                               static_cast<double>(st.sites)
                         : 0.0,
                st.sites ? 100.0 * static_cast<double>(st.gen2_clean) /
                               static_cast<double>(st.sites)
                         : 0.0,
                st.may_sites);
    if (witnesses) {
      print_witnesses_text(cfg, g2.witnesses);
      std::printf("\n%zu witness(es), %zu unexplained\n",
                  g2.witnesses.size(), st.unexplained);
    }
  }
  return st.unexplained == 0 ? 0 : 1;
}
