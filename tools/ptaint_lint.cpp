// ptaint-lint — static analyzer front end.
//
//   ptaint-lint [options] program.s [more.s ...]
//   ptaint-lint --app NAME
//
// Assembles the input (linked with the guest runtime unless --no-runtime),
// recovers the CFG, and runs the classic lints (use-before-def, unreachable
// blocks, stack push/pop imbalance, clobbered callee-saved registers).
// With --taint-report it also prints the static pointer-taintedness
// analyzer's possible tainted-dereference sites, and with --elision-stats
// the proven-clean/possible site counts.
//
// Exit codes mirror ptaint-run's convention:
//   0  no findings
//   1  lint findings reported
//   4  usage or assembly error
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/lint.hpp"
#include "analysis/taint_analyzer.hpp"
#include "guest/apps/registry.hpp"
#include "guest/runtime.hpp"

using namespace ptaint;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "ptaint-lint: cannot open " << path << "\n";
    std::exit(4);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

asmgen::Source app_source(const std::string& name) {
  if (const guest::apps::AppEntry* e = guest::apps::find_app(name)) {
    return e->make();
  }
  std::cerr << "ptaint-lint: unknown app '" << name << "'; known:";
  for (const auto& e : guest::apps::registry()) std::cerr << " " << e.name;
  std::cerr << "\n";
  std::exit(4);
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

/// Machine-readable findings: one JSON array, each element carrying the
/// rule id, the text PC, the enclosing function, and the source location
/// the assembler recorded for that PC (file/line/col; col may be 0).
void print_json(const asmgen::Program& program,
                const std::vector<analysis::LintFinding>& findings) {
  std::printf("[");
  bool first = true;
  for (const analysis::LintFinding& f : findings) {
    const char* sep = first ? "\n" : ",\n";
    first = false;
    std::string file;
    int line = 0, col = 0;
    auto it = program.text_locs.find(f.pc);
    if (it != program.text_locs.end()) {
      file = it->second.file;
      line = it->second.line;
      col = it->second.col;
    }
    std::printf(
        "%s  {\"rule\": \"%s\", \"pc\": \"0x%08x\", "
        "\"function\": \"%s\", \"file\": \"%s\", "
        "\"line\": %d, \"col\": %d, \"message\": \"%s\"}",
        sep, analysis::to_string(f.kind), f.pc,
        json_escape(f.function).c_str(), json_escape(file).c_str(), line,
        col, json_escape(f.message).c_str());
  }
  std::printf("%s]\n", first ? "" : "\n");
}

[[noreturn]] void usage() {
  std::cerr << "usage: ptaint-lint [options] program.s [more.s ...]\n"
               "       ptaint-lint --app NAME\n"
               "       ptaint-lint --all-apps [--jobs N]\n"
               "run ptaint-lint --help for the option list\n";
  std::exit(4);
}

size_t error_count(const std::vector<analysis::LintFinding>& findings) {
  size_t n = 0;
  for (const analysis::LintFinding& f : findings) {
    if (!analysis::lint_is_info(f.kind)) ++n;
  }
  return n;
}

/// Parallel sweep over every registry app: assemble, recover, lint on
/// `jobs` threads.  Output is emitted in registry order whatever the
/// schedule, so the sweep's stdout is deterministic.
int lint_all_apps(int jobs, bool quiet) {
  const auto& registry = guest::apps::registry();
  struct Row {
    std::string report;
    size_t findings = 0;
    size_t info = 0;
  };
  std::vector<Row> rows(registry.size());
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      const size_t i = next.fetch_add(1);
      if (i >= registry.size()) return;
      const asmgen::Program program =
          asmgen::assemble(guest::link_with_runtime(registry[i].make()));
      const analysis::Cfg cfg(program);
      const std::vector<analysis::LintFinding> findings =
          analysis::run_lints(cfg);
      rows[i].report = analysis::format_findings(findings);
      rows[i].findings = error_count(findings);
      rows[i].info = findings.size() - rows[i].findings;
    }
  };
  const int n = std::max(1, std::min<int>(jobs, static_cast<int>(registry.size())));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(n));
  for (int t = 0; t < n; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  size_t total = 0;
  for (size_t i = 0; i < registry.size(); ++i) {
    total += rows[i].findings;
    if (!quiet) {
      std::printf("%s: %zu finding(s), %zu info\n", registry[i].name,
                  rows[i].findings, rows[i].info);
      std::fputs(rows[i].report.c_str(), stdout);
    }
  }
  std::fprintf(stderr, "%zu finding(s) across %zu apps\n", total,
               registry.size());
  return total == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<asmgen::Source> sources;
  cpu::TaintPolicy policy;  // paper defaults
  bool with_runtime = true;
  bool taint_report = false;
  bool elision_stats = false;
  bool quiet = false;
  bool json = false;
  bool all_apps = false;
  int jobs = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--help") {
      std::printf("%s", R"(ptaint-lint: static analyzer for PTA-32 assembly
usage: ptaint-lint [options] program.s [more.s ...]
  --app NAME            lint a built-in guest app (exp1, wu-ftpd, ...)
  --all-apps            lint every built-in app (the CI sweep in one run)
  --jobs N              with --all-apps, lint on N threads (deterministic
                        output order regardless of schedule)
  --list-apps           print the known app names, one per line, and exit
  --no-runtime          do not link the guest runtime
  --taint-report        print statically-possible tainted dereference sites
  --elision-stats       print proven-clean vs possible site counts
  --no-compare-untaint  analyze under the ablated compare rule
  --json                print findings as a JSON array (rule id, pc,
                        function, source file/line/col, message)
  --quiet               suppress findings, set the exit code only
exit codes: 0 no findings, 1 findings, 4 usage or assembly error
)");
      return 0;
    } else if (arg == "--app") {
      sources.push_back(app_source(value()));
    } else if (arg == "--all-apps") {
      all_apps = true;
    } else if (arg == "--jobs") {
      jobs = std::atoi(value().c_str());
      if (jobs < 1) jobs = 1;
    } else if (arg == "--list-apps") {
      for (const auto& e : guest::apps::registry()) {
        std::printf("%s\n", e.name);
      }
      return 0;
    } else if (arg == "--no-runtime") {
      with_runtime = false;
    } else if (arg == "--taint-report") {
      taint_report = true;
    } else if (arg == "--elision-stats") {
      elision_stats = true;
    } else if (arg == "--no-compare-untaint") {
      policy.compare_untaints = false;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "ptaint-lint: unknown option " << arg << "\n";
      usage();
    } else {
      sources.push_back({arg, read_file(arg)});
    }
  }
  if (all_apps) return lint_all_apps(jobs, quiet);
  if (sources.empty()) usage();

  std::vector<asmgen::Source> units;
  if (with_runtime) units = guest::runtime();
  for (auto& s : sources) units.push_back(std::move(s));

  asmgen::Program program;
  try {
    program = asmgen::assemble(units);
  } catch (const asmgen::AssemblyError& e) {
    std::cerr << "assembly failed:\n" << e.what();
    return 4;
  }

  const analysis::Cfg cfg(program);
  const std::vector<analysis::LintFinding> findings = analysis::run_lints(cfg);

  if (json) {
    print_json(program, findings);
  } else if (!quiet) {
    std::fputs(analysis::format_findings(findings).c_str(), stdout);
    if (taint_report || elision_stats) {
      const analysis::TaintAnalysis ta = analysis::analyze_taint(cfg, policy);
      if (taint_report) {
        std::printf("possible tainted dereference sites:\n%s",
                    ta.report(cfg).c_str());
      }
      if (elision_stats) {
        std::printf("%zu dereference sites: %zu possibly tainted, "
                    "%zu proven clean (%.1f%% elidable)\n",
                    ta.sites.size(), ta.possible_sites, ta.proven_clean,
                    ta.sites.empty()
                        ? 0.0
                        : 100.0 * static_cast<double>(ta.proven_clean) /
                              static_cast<double>(ta.sites.size()));
      }
    }
  }
  const size_t errors = error_count(findings);
  if (!json) {
    std::fprintf(stderr,
                 "%zu finding(s) (%zu info) in %zu instructions, "
                 "%zu functions\n",
                 errors, findings.size() - errors, cfg.instructions().size(),
                 cfg.functions().size());
  }
  return errors == 0 ? 0 : 1;
}
