// ptaint-serve — the campaign-analysis daemon (docs/SERVING.md).
//
//   ptaint-serve --socket PATH --journal PATH [options]
//
// Listens on a Unix-domain socket for newline-delimited JSON requests,
// runs submitted analysis jobs on sharded worker threads (shared
// snapshot cache, per-shard machine pool), and journals every accepted
// job and verdict so a restart finishes what a crash interrupted.
//
// Options:
//   --socket PATH      Unix socket to listen on (required)
//   --journal PATH     job queue journal file (required; created if absent)
//   --workers N        shard worker threads (default 4)
//   --quota N          live (queued+running) jobs per tenant; 0 = off
//                      (default 1024)
//   --spec-scale N     SPEC surrogate input scale for matrix cells
//   --timeout-ms N     default per-job deadline (default 60000)
//   --slice N          instructions per deadline-check slice
//   --snapshot-store   content-addressed snapshot store (DESIGN.md §13):
//                      snapshot pages deduped/compressed across keys
//   --snapshot-dir D   snapshot store with a disk tier in directory D; a
//                      restarted daemon rehydrates warm snapshots from it
//   --verbose          startup/shutdown chatter on stderr
//
// Exit codes: 0 clean shutdown (signal or protocol `shutdown`), 1 startup
// failure, 4 usage error.
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "serve/server.hpp"

using ptaint::serve::ServeDaemon;

namespace {

[[noreturn]] void usage() {
  std::cerr << "usage: ptaint-serve --socket PATH --journal PATH [options]\n"
               "  --workers N     shard worker threads (default 4)\n"
               "  --quota N       live jobs per tenant, 0 = off (default "
               "1024)\n"
               "  --spec-scale N  SPEC surrogate input scale\n"
               "  --timeout-ms N  default per-job deadline (default 60000)\n"
               "  --slice N       instructions per deadline-check slice\n"
               "  --snapshot-store   content-addressed snapshot store "
               "(memory only)\n"
               "  --snapshot-dir D   store with disk tier: a restarted "
               "daemon rehydrates warm snapshots from D\n"
               "  --verbose       startup/shutdown chatter on stderr\n";
  std::exit(4);
}

}  // namespace

int main(int argc, char** argv) {
  ServeDaemon::Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--socket") {
      config.socket_path = value();
    } else if (arg == "--journal") {
      config.journal_path = value();
    } else if (arg == "--workers") {
      config.workers = static_cast<int>(std::strtol(value().c_str(), nullptr, 0));
      if (config.workers < 1) usage();
    } else if (arg == "--quota") {
      config.tenant_quota =
          static_cast<int>(std::strtol(value().c_str(), nullptr, 0));
      if (config.tenant_quota < 0) usage();
    } else if (arg == "--spec-scale") {
      config.spec_scale =
          static_cast<int>(std::strtol(value().c_str(), nullptr, 0));
      if (config.spec_scale < 1) usage();
    } else if (arg == "--timeout-ms") {
      config.default_timeout_ms = std::strtoull(value().c_str(), nullptr, 0);
    } else if (arg == "--slice") {
      config.slice_instructions = std::strtoull(value().c_str(), nullptr, 0);
      if (config.slice_instructions == 0) usage();
    } else if (arg == "--snapshot-store") {
      config.snapshot_store = true;
    } else if (arg == "--snapshot-dir") {
      config.snapshot_dir = value();
    } else if (arg == "--verbose") {
      config.quiet = false;
    } else {
      usage();
    }
  }
  if (config.socket_path.empty() || config.journal_path.empty()) usage();

  // SIGINT/SIGTERM are handled synchronously by a dedicated thread (all
  // other threads inherit the blocked mask), so shutdown goes through the
  // same stop() path as the protocol `shutdown` command.
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);

  ServeDaemon daemon(config);
  try {
    daemon.start();
  } catch (const std::exception& e) {
    std::cerr << "ptaint-serve: " << e.what() << "\n";
    return 1;
  }
  if (!config.quiet) {
    std::cerr << "ptaint-serve: listening on " << config.socket_path << " ("
              << config.workers << " workers, journal "
              << config.journal_path << ", " << daemon.replayed()
              << " jobs replayed)\n";
  }

  std::atomic<bool> exiting{false};
  std::thread signals([&]() {
    for (;;) {
      int sig = 0;
      if (sigwait(&set, &sig) != 0) continue;
      if (exiting.load()) return;
      daemon.stop();
    }
  });

  daemon.wait();
  exiting.store(true);
  // Unblock the signal thread if the daemon stopped via the protocol.
  kill(getpid(), SIGTERM);
  signals.join();
  if (!config.quiet) std::cerr << "ptaint-serve: stopped\n";
  return 0;
}
