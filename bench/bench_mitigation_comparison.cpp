// Mitigation comparison (beyond the paper): the exp2 heap overflow against
// four defensive configurations, quantifying where the paper's architecture
// sits relative to the software mitigation that later became standard
// (glibc safe unlinking).
//
//   defense                         outcome for the attacker
//   none                            arbitrary-write primitive fires
//   safe unlink only                write denied, process aborts/crashes
//   pointer taintedness only        detected at the unlink store
//   both                            detected at the check's load — the
//                                   exact `lw ...,($3)` alert shape the
//                                   paper reports for exp2
#include <cstdio>
#include <string>

#include "core/machine.hpp"
#include "guest/apps/apps.hpp"
#include "guest/runtime.hpp"

using namespace ptaint;
using namespace ptaint::core;

namespace {

struct Config {
  const char* name;
  bool hardened_heap;
  cpu::DetectionMode mode;
};

void run_config(const Config& cfg) {
  MachineConfig mc;
  mc.policy.mode = cfg.mode;
  Machine m(mc);
  auto app = guest::apps::exp2_heap();
  m.load_sources(cfg.hardened_heap
                     ? guest::link_with_hardened_runtime(app)
                     : guest::link_with_runtime(app));
  // Aligned crafted links so every configuration reaches its decision
  // point (an unaligned link would crash earlier in some configs).
  m.os().set_stdin(std::string(12, 'a') + "bbbb" + "dddd");
  auto r = m.run();

  const char* outcome;
  std::string detail;
  if (r.detected()) {
    outcome = "DETECTED";
    detail = r.alert_line();
  } else if (r.stop == cpu::StopReason::kExit && r.exit_status == 134) {
    outcome = "ABORTED";
    detail = "safe unlink refused the corrupted chunk";
  } else if (r.stop == cpu::StopReason::kFault) {
    outcome = "CRASHED";
    detail = r.fault;
  } else {
    outcome = "WRITE LANDED";
    detail = "attacker's unlink write primitive executed";
  }
  std::printf("%-34s %-13s %s\n", cfg.name, outcome, detail.c_str());
}

}  // namespace

int main() {
  std::printf("== exp2 heap overflow vs defensive configurations ==\n\n");
  const Config configs[] = {
      {"no defense", false, cpu::DetectionMode::kOff},
      {"safe unlink only", true, cpu::DetectionMode::kOff},
      {"pointer taintedness only", false, cpu::DetectionMode::kPointerTaint},
      {"safe unlink + pointer taint", true, cpu::DetectionMode::kPointerTaint},
  };
  for (const auto& cfg : configs) run_config(cfg);
  std::printf(
      "\nreading: the software mitigation denies this particular write but\n"
      "is check-shaped (bypassable when the attacker can satisfy the\n"
      "back-pointer test — see HardenedHeap tests); the paper's detector\n"
      "fires on the tainted dereference itself, independent of allocator\n"
      "hygiene, and composes with the mitigation.\n");
  return 0;
}
