// Sustained serving throughput of the ptaint-serve daemon.
//
// Boots a ServeDaemon in-process on a scratch socket + journal, then
// drives the seed ablation workload — every detectable attack cell under
// the paper policy — through the full socket protocol with the shared
// load generator (streaming submits over concurrent connections).  The
// measured path is the real daemon path end to end: NDJSON parse, quota
// check, journal append, fair-queue dispatch, snapshot-fork execution on
// shard workers, judge-batch adjudication, second journal append, event
// fan-out, socket write.
//
//   bench_serve [json-path] [--jobs N] [--connections N] [--batch N]
//               [--workers N] [--check]
//
// Two timed phases per configuration: a warmup pass (boots the snapshots
// and populates every shard's machine pool) and the measured pass.
// Results — sustained jobs/sec plus p50/p99 submit-to-verdict latency —
// go to `json-path` (default BENCH_serve.json) for EXPERIMENTS.md and CI.
// `--check` instead runs a small pass and exits 1 unless every job
// verdicted (made for sanitizer legs, where timing is meaningless).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "campaign/campaigns.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

using namespace ptaint;
using namespace ptaint::serve;

namespace {

std::string scratch_path(const char* suffix) {
  return "/tmp/bench_serve." + std::to_string(::getpid()) + suffix;
}

/// The seed load: the ablation matrix's detectable attack cells under the
/// paper policy — small guests, one shared snapshot per scenario, the
/// workload the acceptance bar is defined against.
std::vector<std::string> seed_specs() {
  std::vector<std::string> specs;
  for (const auto& cell : campaign::campaign_cells("ablation")) {
    if (cell.app != "attack") continue;
    if (cell.policy != "paper (all rules on)") continue;
    specs.push_back("{\"app\": \"attack\", \"payload\": \"" + cell.payload +
                    "\", \"policy\": \"paper\"}");
  }
  return specs;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_serve.json";
  uint64_t jobs = 4000;
  int connections = 4, batch = 32, workers = 8;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_serve: %s needs a value\n", arg.c_str());
        std::exit(4);
      }
      return argv[++i];
    };
    if (arg == "--jobs") {
      jobs = std::strtoull(value(), nullptr, 0);
    } else if (arg == "--connections") {
      connections = std::atoi(value());
    } else if (arg == "--batch") {
      batch = std::atoi(value());
    } else if (arg == "--workers") {
      workers = std::atoi(value());
    } else if (arg == "--check") {
      check = true;
    } else if (!arg.empty() && arg[0] != '-') {
      json_path = arg;
    } else {
      std::fprintf(stderr, "bench_serve: unknown option %s\n", arg.c_str());
      return 4;
    }
  }
  if (check) {
    jobs = 64;
    connections = 2;
  }

  ServeDaemon::Config config;
  config.socket_path = scratch_path(".sock");
  config.journal_path = scratch_path(".journal");
  config.workers = workers;
  ::unlink(config.journal_path.c_str());

  ServeDaemon daemon(config);
  daemon.start();
  const std::vector<std::string> specs = seed_specs();

  // Warmup: boots every scenario snapshot into the shared cache and a kept
  // machine into each shard's pool, so the measured pass times serving,
  // not first-touch construction.
  const LoadStats warm = run_load(config.socket_path, specs,
                                  specs.size() * 4, connections, batch);
  const LoadStats stats =
      run_load(config.socket_path, specs, jobs, connections, batch);

  {
    Client client(config.socket_path);
    client.request("{\"cmd\": \"shutdown\"}");
  }
  daemon.wait();
  ::unlink(config.journal_path.c_str());

  std::printf("== ptaint-serve sustained throughput ==\n\n");
  std::printf("workload: %zu ablation attack cells, %llu jobs, %d workers, "
              "%d connections x batch %d\n",
              specs.size(), static_cast<unsigned long long>(stats.jobs),
              workers, connections, batch);
  std::printf("sustained: %.0f jobs/s over %.2fs\n", stats.jobs_per_sec,
              stats.wall_s);
  std::printf("latency:   p50 %.2fms  p99 %.2fms (submit -> verdict)\n",
              stats.p50_ms, stats.p99_ms);
  if (stats.errors != 0 || warm.errors != 0) {
    std::fprintf(stderr, "bench_serve: %llu load errors\n",
                 static_cast<unsigned long long>(stats.errors + warm.errors));
    return 1;
  }
  if (check) {
    const bool ok = stats.jobs == jobs;
    std::printf("\ncheck: %s (%llu/%llu verdicts)\n", ok ? "ok" : "FAILED",
                static_cast<unsigned long long>(stats.jobs),
                static_cast<unsigned long long>(jobs));
    return ok ? 0 : 1;
  }

  std::ostringstream json;
  char line[256];
  json << "{\n  \"bench\": \"serve_throughput\",\n";
  json << "  \"workload\": \"ablation-attack-cells\",\n";
  std::snprintf(line, sizeof line,
                "  \"jobs\": %llu,\n  \"workers\": %d,\n"
                "  \"connections\": %d,\n  \"batch\": %d,\n",
                static_cast<unsigned long long>(stats.jobs), workers,
                connections, batch);
  json << line;
  std::snprintf(line, sizeof line,
                "  \"wall_s\": %.3f,\n  \"jobs_per_sec\": %.1f,\n"
                "  \"p50_ms\": %.3f,\n  \"p99_ms\": %.3f\n}\n",
                stats.wall_s, stats.jobs_per_sec, stats.p50_ms, stats.p99_ms);
  json << line;
  std::ofstream out(json_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "bench_serve: cannot write %s\n", json_path.c_str());
    return 4;
  }
  out << json.str();
  return 0;
}
