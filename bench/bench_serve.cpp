// Sustained serving throughput of the ptaint-serve daemon.
//
// Boots a ServeDaemon in-process on a scratch socket + journal, then
// drives the seed ablation workload — every detectable attack cell under
// the paper policy — through the full socket protocol with the shared
// load generator (streaming submits over concurrent connections).  The
// measured path is the real daemon path end to end: NDJSON parse, quota
// check, journal append, fair-queue dispatch, snapshot-fork execution on
// shard workers, judge-batch adjudication, second journal append, event
// fan-out, socket write.
//
//   bench_serve [json-path] [--jobs N] [--connections N] [--batch N]
//               [--workers N] [--check] [--soak N]
//
// Two timed phases per configuration: a warmup pass (boots the snapshots
// and populates every shard's machine pool) and the measured pass.
// Results — sustained jobs/sec plus p50/p99 submit-to-verdict latency —
// go to `json-path` (default BENCH_serve.json) for EXPERIMENTS.md and CI.
// `--check` instead runs a small pass and exits 1 unless every job
// verdicted (made for sanitizer legs, where timing is meaningless).
//
// `--soak N` exercises the store-backed restart path (DESIGN.md §13): a
// cold daemon with a disk-tier snapshot store serves N jobs and shuts
// down cleanly; a second daemon on the same journal + store directory
// then serves N more.  Asserted: phase-A results replayed done and never
// re-executed (exactly-once), phase B rehydrates snapshots from the
// prior process's disk tier (warm misses < cold misses, disk
// rehydrations > 0), and the two phases' verdicts are identical.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "campaign/campaigns.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

using namespace ptaint;
using namespace ptaint::serve;

namespace {

std::string scratch_path(const char* suffix) {
  return "/tmp/bench_serve." + std::to_string(::getpid()) + suffix;
}

/// The seed load: the ablation matrix's detectable attack cells under the
/// paper policy — small guests, one shared snapshot per scenario, the
/// workload the acceptance bar is defined against.
std::vector<std::string> seed_specs() {
  std::vector<std::string> specs;
  for (const auto& cell : campaign::campaign_cells("ablation")) {
    if (cell.app != "attack") continue;
    if (cell.policy != "paper (all rules on)") continue;
    specs.push_back("{\"app\": \"attack\", \"payload\": \"" + cell.payload +
                    "\", \"policy\": \"paper\"}");
  }
  return specs;
}

/// First occurrence of a quoted string field in a JSON reply line.
std::string extract_str(const std::string& json, const std::string& key) {
  const std::string pat = "\"" + key + "\": \"";
  const size_t p = json.find(pat);
  if (p == std::string::npos) return "";
  const size_t begin = p + pat.size();
  const size_t end = json.find('"', begin);
  return end == std::string::npos ? "" : json.substr(begin, end - begin);
}

/// First occurrence of a numeric field in a JSON reply line.
uint64_t extract_u64(const std::string& json, const std::string& key) {
  const std::string pat = "\"" + key + "\": ";
  const size_t p = json.find(pat);
  if (p == std::string::npos) return 0;
  return std::strtoull(json.c_str() + p + pat.size(), nullptr, 10);
}

/// The timing-independent part of a verdict row, for cross-phase
/// comparison.
std::string verdict_fingerprint(const std::string& row) {
  return extract_str(row, "payload") + "|" + extract_str(row, "policy") +
         "|" + extract_str(row, "verdict") + "|" + extract_str(row, "stop") +
         "|" + extract_str(row, "alert") + "|" +
         extract_str(row, "alert_function");
}

int run_soak(uint64_t jobs, int connections, int batch, int workers) {
  const std::string socket = scratch_path(".sock");
  const std::string journal = scratch_path(".journal");
  char tmpl[] = "/tmp/bench_serve.store.XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  if (dir == nullptr) {
    std::fprintf(stderr, "soak: mkdtemp failed\n");
    return 4;
  }
  ::unlink(journal.c_str());
  const std::vector<std::string> specs = seed_specs();
  auto fail = [&](const char* msg) {
    std::fprintf(stderr, "soak: %s\n", msg);
    std::filesystem::remove_all(dir);
    ::unlink(journal.c_str());
    return 1;
  };

  ServeDaemon::Config config;
  config.socket_path = socket;
  config.journal_path = journal;
  config.workers = workers;
  config.snapshot_store = true;
  config.snapshot_dir = dir;

  // Phase A: cold daemon, empty store.  Every scenario snapshot is built
  // once, dehydrated into the store and written behind to the disk tier.
  uint64_t cold_misses = 0;
  std::vector<std::string> verdicts_a;
  {
    ServeDaemon daemon(config);
    daemon.start();
    const LoadStats stats =
        run_load(socket, specs, jobs, connections, batch);
    if (stats.errors != 0 || stats.jobs != jobs) {
      return fail("phase A load errors / missing verdicts");
    }
    Client client(socket);
    const std::string status = client.request("{\"cmd\": \"status\"}");
    cold_misses = extract_u64(status, "misses");
    if (cold_misses == 0) return fail("phase A reported no cold misses");
    if (status.find("\"store_enabled\": true") == std::string::npos) {
      return fail("phase A daemon is not store-backed");
    }
    for (uint64_t id = 1; id <= jobs; ++id) {
      const std::string r = client.request(
          "{\"cmd\": \"result\", \"id\": " + std::to_string(id) + "}");
      if (extract_str(r, "state") != "done") {
        return fail("phase A job not done");
      }
      verdicts_a.push_back(verdict_fingerprint(r));
    }
    client.request("{\"cmd\": \"shutdown\"}");
    daemon.wait();  // flushes the store's write-behind queue
  }

  // Phase B: a fresh daemon process-equivalent on the same journal and
  // store directory.  The journal replays phase A's results (done, never
  // re-run); the store directory seeds the cache with warm dehydrated
  // snapshots.
  std::vector<std::string> verdicts_b;
  uint64_t warm_misses = 0, disk_rehydrations = 0;
  {
    ServeDaemon daemon(config);
    daemon.start();
    Client client(socket);
    const std::string status0 = client.request("{\"cmd\": \"status\"}");
    if (extract_u64(status0, "done") != jobs) {
      return fail("restart did not replay phase A results as done");
    }
    if (extract_u64(status0, "jobs_done") != 0 ||
        extract_u64(status0, "replayed") != 0) {
      return fail("restart re-executed phase A jobs (exactly-once broken)");
    }
    const LoadStats stats =
        run_load(socket, specs, jobs, connections, batch);
    if (stats.errors != 0 || stats.jobs != jobs) {
      return fail("phase B load errors / missing verdicts");
    }
    const std::string status1 = client.request("{\"cmd\": \"status\"}");
    warm_misses = extract_u64(status1, "misses");
    disk_rehydrations = extract_u64(status1, "disk_rehydrations");
    if (warm_misses >= cold_misses) {
      return fail("phase B was not warm (misses did not drop)");
    }
    if (disk_rehydrations == 0) {
      return fail("phase B never rehydrated from the disk tier");
    }
    for (uint64_t id = jobs + 1; id <= 2 * jobs; ++id) {
      const std::string r = client.request(
          "{\"cmd\": \"result\", \"id\": " + std::to_string(id) + "}");
      if (extract_str(r, "state") != "done") {
        return fail("phase B job not done");
      }
      verdicts_b.push_back(verdict_fingerprint(r));
    }
    client.request("{\"cmd\": \"shutdown\"}");
    daemon.wait();
  }

  std::sort(verdicts_a.begin(), verdicts_a.end());
  std::sort(verdicts_b.begin(), verdicts_b.end());
  if (verdicts_a != verdicts_b) {
    return fail("verdicts differ between cold and warm phases");
  }

  std::printf("== ptaint-serve store-backed soak ==\n\n");
  std::printf("phase A (cold): %llu jobs, %llu snapshot misses\n",
              static_cast<unsigned long long>(jobs),
              static_cast<unsigned long long>(cold_misses));
  std::printf("phase B (warm): %llu jobs, %llu misses, %llu disk "
              "rehydrations\n",
              static_cast<unsigned long long>(jobs),
              static_cast<unsigned long long>(warm_misses),
              static_cast<unsigned long long>(disk_rehydrations));
  std::printf("exactly-once: phase A results replayed done, none re-run\n");
  std::printf("verdicts: cold == warm (%zu rows)\n", verdicts_a.size());
  std::filesystem::remove_all(dir);
  ::unlink(journal.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_serve.json";
  uint64_t jobs = 4000;
  int connections = 4, batch = 32, workers = 8;
  bool check = false;
  uint64_t soak = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_serve: %s needs a value\n", arg.c_str());
        std::exit(4);
      }
      return argv[++i];
    };
    if (arg == "--jobs") {
      jobs = std::strtoull(value(), nullptr, 0);
    } else if (arg == "--connections") {
      connections = std::atoi(value());
    } else if (arg == "--batch") {
      batch = std::atoi(value());
    } else if (arg == "--workers") {
      workers = std::atoi(value());
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--soak") {
      soak = std::strtoull(value(), nullptr, 0);
    } else if (!arg.empty() && arg[0] != '-') {
      json_path = arg;
    } else {
      std::fprintf(stderr, "bench_serve: unknown option %s\n", arg.c_str());
      return 4;
    }
  }
  if (soak > 0) return run_soak(soak, connections, batch, workers);
  if (check) {
    jobs = 64;
    connections = 2;
  }

  ServeDaemon::Config config;
  config.socket_path = scratch_path(".sock");
  config.journal_path = scratch_path(".journal");
  config.workers = workers;
  ::unlink(config.journal_path.c_str());

  ServeDaemon daemon(config);
  daemon.start();
  const std::vector<std::string> specs = seed_specs();

  // Warmup: boots every scenario snapshot into the shared cache and a kept
  // machine into each shard's pool, so the measured pass times serving,
  // not first-touch construction.
  const LoadStats warm = run_load(config.socket_path, specs,
                                  specs.size() * 4, connections, batch);
  const LoadStats stats =
      run_load(config.socket_path, specs, jobs, connections, batch);

  {
    Client client(config.socket_path);
    client.request("{\"cmd\": \"shutdown\"}");
  }
  daemon.wait();
  ::unlink(config.journal_path.c_str());

  std::printf("== ptaint-serve sustained throughput ==\n\n");
  std::printf("workload: %zu ablation attack cells, %llu jobs, %d workers, "
              "%d connections x batch %d\n",
              specs.size(), static_cast<unsigned long long>(stats.jobs),
              workers, connections, batch);
  std::printf("sustained: %.0f jobs/s over %.2fs\n", stats.jobs_per_sec,
              stats.wall_s);
  std::printf("latency:   p50 %.2fms  p99 %.2fms (submit -> verdict)\n",
              stats.p50_ms, stats.p99_ms);
  if (stats.errors != 0 || warm.errors != 0) {
    std::fprintf(stderr, "bench_serve: %llu load errors\n",
                 static_cast<unsigned long long>(stats.errors + warm.errors));
    return 1;
  }
  if (check) {
    const bool ok = stats.jobs == jobs;
    std::printf("\ncheck: %s (%llu/%llu verdicts)\n", ok ? "ok" : "FAILED",
                static_cast<unsigned long long>(stats.jobs),
                static_cast<unsigned long long>(jobs));
    return ok ? 0 : 1;
  }

  std::ostringstream json;
  char line[256];
  json << "{\n  \"bench\": \"serve_throughput\",\n";
  json << "  \"workload\": \"ablation-attack-cells\",\n";
  std::snprintf(line, sizeof line,
                "  \"jobs\": %llu,\n  \"workers\": %d,\n"
                "  \"connections\": %d,\n  \"batch\": %d,\n",
                static_cast<unsigned long long>(stats.jobs), workers,
                connections, batch);
  json << line;
  std::snprintf(line, sizeof line,
                "  \"wall_s\": %.3f,\n  \"jobs_per_sec\": %.1f,\n"
                "  \"p50_ms\": %.3f,\n  \"p99_ms\": %.3f\n}\n",
                stats.wall_s, stats.jobs_per_sec, stats.p50_ms, stats.p99_ms);
  json << line;
  std::ofstream out(json_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "bench_serve: cannot write %s\n", json_path.c_str());
    return 4;
  }
  out << json.str();
  return 0;
}
