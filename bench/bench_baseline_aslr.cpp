// ASLR baseline study (paper §2 related work): stack randomization vs the
// exp1 injected-shellcode attack with a fixed-layout payload.
//
// Reproduces the argument the paper cites from Shacham et al.: with k bits
// of entropy the attacker's expected number of brute-force attempts is
// ~2^k, which on 32-bit systems (16-20 usable bits) is hours, not safety —
// while the pointer-taintedness detector is deterministic at any entropy.
#include <cstdio>

#include "core/machine.hpp"
#include "guest/apps/apps.hpp"
#include "guest/runtime.hpp"
#include "isa/isa.hpp"

using namespace ptaint;
using namespace ptaint::core;

namespace {

std::string fixed_payload() {
  const uint32_t code_addr = isa::layout::kStackTop - 64 + 16 + 24;
  const uint32_t str_addr = code_addr + 7 * 4;
  auto le = [](uint32_t v) {
    std::string s(4, '\0');
    for (int i = 0; i < 4; ++i) s[i] = static_cast<char>(v >> (8 * i));
    return s;
  };
  auto enc = [&](isa::Op op, uint8_t rt, uint8_t rs, int32_t imm) {
    isa::Instruction in;
    in.op = op;
    in.rt = rt;
    in.rs = rs;
    in.imm = imm;
    return le(isa::encode(in));
  };
  isa::Instruction sys;
  sys.op = isa::Op::kSyscall;
  std::string p(20, 'a');
  p += le(code_addr);
  p += enc(isa::Op::kLui, isa::kA0, 0, static_cast<int32_t>(str_addr >> 16));
  p += enc(isa::Op::kOri, isa::kA0, isa::kA0,
           static_cast<int32_t>(str_addr & 0xffff));
  p += enc(isa::Op::kAddiu, isa::kV0, isa::kZero, 59);
  p += le(isa::encode(sys));
  p += enc(isa::Op::kAddiu, isa::kA0, isa::kZero, 0);
  p += enc(isa::Op::kAddiu, isa::kV0, isa::kZero, 1);
  p += le(isa::encode(sys));
  p += "/bin/sh";
  p.push_back('\0');
  return p;
}

bool attempt(int bits, uint32_t seed, bool detector) {
  MachineConfig cfg;
  cfg.policy.mode =
      detector ? cpu::DetectionMode::kPointerTaint : cpu::DetectionMode::kOff;
  cfg.aslr_entropy_bits = bits;
  cfg.aslr_seed = seed;
  cfg.max_instructions = 5'000'000;
  Machine m(cfg);
  m.load_sources(guest::link_with_runtime(guest::apps::exp1_stack()));
  m.os().set_stdin(fixed_payload());
  m.run();
  for (const auto& path : m.os().exec_log()) {
    if (path == "/bin/sh") return true;
  }
  return false;
}

}  // namespace

int main() {
  std::printf("== ASLR baseline: brute-forcing the stack offset ==\n\n");
  std::printf("%-14s %-22s %s\n", "entropy bits", "attempts to success",
              "expected ~2^k");
  for (int bits : {2, 4, 6, 8}) {
    int attempts = -1;
    for (uint32_t seed = 0; seed < (1u << (bits + 4)); ++seed) {
      if (attempt(bits, seed, /*detector=*/false)) {
        attempts = static_cast<int>(seed) + 1;
        break;
      }
    }
    std::printf("%-14d %-22d %d\n", bits, attempts, 1 << bits);
  }
  std::printf("\nwith the pointer-taintedness detector, every attempt is "
              "caught:\n");
  int caught = 0;
  for (uint32_t seed = 0; seed < 16; ++seed) {
    if (!attempt(8, seed, /*detector=*/true)) ++caught;
  }
  std::printf("  16/%d attempts stopped (deterministic, entropy-free)\n",
              caught);
  std::printf("\npaper §2 reproduced: low-entropy randomization only delays "
              "the attacker;\nthe architectural detector does not depend on "
              "secrets.\n");
  return 0;
}
