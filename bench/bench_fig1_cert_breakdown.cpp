// Figure 1 — CERT advisories 2000-2003: leading vulnerability categories.
//
// Prints the reconstructed breakdown (memory-corruption categories sum to
// the paper's 67% of 107 advisories) and classifies this repository's
// attack corpus into the same taxonomy.
#include <cstdio>

#include "core/cert_data.hpp"

using namespace ptaint::core;

int main() {
  std::printf("== Figure 1: CERT advisories 2000-2003 by category ==\n\n");
  std::printf("%-22s %10s %8s  %s\n", "category", "advisories", "share",
              "");
  for (const auto& c : cert_breakdown()) {
    std::printf("%-22s %10d %7.1f%%  %s\n", c.name.c_str(), c.advisories,
                100.0 * c.advisories / cert_total_advisories(),
                c.memory_corruption ? "memory corruption" : "");
  }
  std::printf("\nmemory-corruption share: %.0f%% of %d advisories "
              "(paper: 67%% of 107; per-category split approximate)\n",
              100.0 * cert_memory_corruption_share(),
              cert_total_advisories());

  std::printf("\nattack corpus coverage of the taxonomy:\n");
  for (const auto& [category, count] : corpus_by_category()) {
    std::printf("  %-20s %d scenario(s)\n", category.c_str(), count);
  }
  return 0;
}
