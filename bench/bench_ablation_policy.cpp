// Ablation study over the Table 1 special-case rules and taint granularity
// (DESIGN.md §5).  For each policy variant:
//   * false positives over the benign corpus + SPEC surrogates;
//   * detection over the attack corpus.
// Shows which compatibility rules are load-bearing (disable one and benign
// code starts alerting) and that per-word taint does not change detection
// on this corpus while coarsening propagation.
//
// Runs on the campaign engine: each guest boots once into a shared
// snapshot and every policy variant forks from it on a worker pool.  The
// report is a pure function of the matrix, so output is byte-identical to
// the old serial version regardless of --workers.
//
//   bench_ablation_policy [--workers N] [--serial] [--time]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "campaign/campaigns.hpp"
#include "campaign/executor.hpp"

using namespace ptaint::campaign;

int main(int argc, char** argv) {
  Executor::Config config;
  bool serial = false;
  bool timing = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      config.workers = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--serial") == 0) {
      serial = true;
    } else if (std::strcmp(argv[i], "--time") == 0) {
      timing = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_ablation_policy [--workers N] [--serial] "
                   "[--time]\n");
      return 4;
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<JobResult> results;
  if (serial) {
    results = run_serial_reference("ablation");
  } else {
    SnapshotCache cache;
    results = Executor(config).run(make_jobs("ablation", cache));
  }
  std::fputs(format_campaign("ablation", results).c_str(), stdout);
  if (timing) {
    const double s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    std::fprintf(stderr, "time: %.2fs (%s)\n", s,
                 serial ? "serial" : "engine");
  }
  return 0;
}
