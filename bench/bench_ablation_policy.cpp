// Ablation study over the Table 1 special-case rules and taint granularity
// (DESIGN.md §5).  For each policy variant:
//   * false positives over the benign corpus + SPEC surrogates;
//   * detection over the attack corpus.
// Shows which compatibility rules are load-bearing (disable one and benign
// code starts alerting) and that per-word taint does not change detection
// on this corpus while coarsening propagation.
#include <cstdio>
#include <string>
#include <vector>

#include "core/attack.hpp"
#include "core/spec_workloads.hpp"

using namespace ptaint;
using namespace ptaint::core;

namespace {

struct Variant {
  std::string name;
  cpu::TaintPolicy policy;
};

std::vector<Variant> variants() {
  std::vector<Variant> out;
  out.push_back({"paper (all rules on)", {}});
  {
    cpu::TaintPolicy p;
    p.compare_untaints = false;
    out.push_back({"no compare-untaint", p});
  }
  {
    cpu::TaintPolicy p;
    p.and_zero_untaints = false;
    out.push_back({"no AND-zero untaint", p});
  }
  {
    cpu::TaintPolicy p;
    p.xor_self_untaints = false;
    out.push_back({"no XOR-self untaint", p});
  }
  {
    cpu::TaintPolicy p;
    p.shift_smear = false;
    out.push_back({"no shift smear", p});
  }
  {
    cpu::TaintPolicy p;
    p.per_word_taint = true;
    out.push_back({"per-word taint", p});
  }
  return out;
}

}  // namespace

int main() {
  std::printf("== Ablation: Table 1 rules and taint granularity ==\n\n");
  std::printf("%-24s %18s %18s\n", "variant", "SPEC false pos.",
              "attacks detected");

  const auto workloads = make_spec_workloads(1);
  for (const auto& v : variants()) {
    int spec_fp = 0;
    for (const auto& w : workloads) {
      if (run_spec_workload(w, v.policy).alert) ++spec_fp;
    }
    int detected = 0, detectable = 0;
    for (const auto& scenario : make_attack_corpus()) {
      if (!scenario->expected_detected()) continue;
      ++detectable;
      auto r = scenario->run_attack_with(v.policy);
      if (r.outcome == Outcome::kDetected) ++detected;
    }
    std::printf("%-24s %12d / %zu %14d / %d\n", v.name.c_str(), spec_fp,
                workloads.size(), detected, detectable);
  }

  std::printf(
      "\nreading: the compare-untaint rule is the compatibility-critical "
      "one — without it, validated indices stay tainted and benign table "
      "lookups false-positive (the paper keeps it and accepts the Table 4 "
      "false negatives in exchange).\n");
  return 0;
}
