// Extension (§5.3 last paragraph) — Table 4 revisited with annotations.
//
// The paper proposes sacrificing transparency: the programmer annotates
// data structures that must never be tainted, and the architecture alerts
// when one becomes tainted.  This bench re-runs the Table 4 false-negative
// scenarios with annotations in place and reports which become detectable.
#include <cstdio>
#include <string>

#include "core/machine.hpp"
#include "guest/apps/apps.hpp"
#include "guest/runtime.hpp"

using namespace ptaint;
using namespace ptaint::core;

namespace {

void show(const char* label, const RunReport& r, const char* note) {
  std::printf("%-34s %-14s %s\n", label,
              r.detected() ? "DETECTED" : "still missed",
              r.detected() ? r.alert_line().c_str() : note);
}

}  // namespace

int main() {
  std::printf("== §5.3 extension: annotated never-tainted regions ==\n\n");

  {
    // Table 4(B): the auth flag lives in main's frame at a deterministic
    // address; annotate it.
    Machine m;
    m.load_sources(guest::link_with_runtime(guest::apps::fn_auth_flag()));
    m.cpu().protect_region(isa::layout::kStackTop - 40 + 28, 4, "auth_flag");
    m.os().set_stdin(std::string(16, 'a'));
    show("(B) auth-flag overwrite", m.run(), "");
  }
  {
    // Table 4(A): the index attack writes an untainted CONSTANT through a
    // validated index — taintedness-based annotation still misses it.
    Machine m;
    m.load_sources(guest::link_with_runtime(guest::apps::fn_int_overflow()));
    m.protect_symbol("sentinel", 4);
    m.os().set_stdin("-16");
    show("(A) integer-overflow index", m.run(),
         "(stored value is an untainted constant)");
  }
  {
    // Table 4(C): a leak performs no writes at all; annotations cannot
    // apply.
    Machine m;
    m.load_sources(guest::link_with_runtime(guest::apps::fn_format_leak()));
    m.os().net().add_session({"%x%x%x%x"});
    show("(C) format-string info leak", m.run(),
         "(reads only; nothing to annotate)");
  }

  std::printf(
      "\nreading: annotations recover the flag-overwrite class at the cost\n"
      "of transparency; value-constant overwrites and pure leaks remain\n"
      "out of reach, as the paper anticipates.\n");
  return 0;
}
