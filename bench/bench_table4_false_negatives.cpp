// Table 4 — False-negative scenarios.
//
// Regenerates the three scenarios that escape pointer-taintedness
// detection, demonstrating that (a) the damage really happens with the
// detector ON, and (b) the closely related pointer-dereferencing variant
// of scenario (C) is still caught.
#include <cstdio>

#include "core/attack.hpp"
#include "guest/apps/apps.hpp"
#include "guest/runtime.hpp"

using namespace ptaint;
using namespace ptaint::core;

namespace {

void run_case(const char* label, AttackId id) {
  auto r = make_scenario(id)->run_attack(cpu::DetectionMode::kPointerTaint);
  std::printf("%-34s  outcome=%-12s %s\n", label, to_string(r.outcome),
              r.detail.c_str());
}

}  // namespace

int main() {
  std::printf("== Table 4: False Negative Scenarios "
              "(detector ON, attacks still land) ==\n\n");
  run_case("(A) integer overflow index", AttackId::kFnIntOverflow);
  run_case("(B) auth-flag overwrite", AttackId::kFnAuthFlag);
  run_case("(C) format-string info leak", AttackId::kFnFormatLeak);

  std::printf("\ncontrast: the WRITE variant of (C) is detected:\n");
  MachineConfig cfg;
  Machine m(cfg);
  m.load_sources(guest::link_with_runtime(guest::apps::fn_format_leak()));
  m.os().net().add_session({"abcd%x%x%x%x%n"});
  auto rep = m.run();
  std::printf("  %%x%%x%%x%%x%%n -> %s\n",
              rep.detected() ? rep.alert_line().c_str() : "NOT DETECTED (!)");

  std::printf(
      "\npaper: all three scenarios escape any generic runtime detector;\n"
      "they corrupt or leak plain data without ever dereferencing a tainted "
      "word.\n");
  return 0;
}
