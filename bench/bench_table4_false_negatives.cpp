// Table 4 — False-negative scenarios.
//
// Regenerates the three scenarios that escape pointer-taintedness
// detection, demonstrating that (a) the damage really happens with the
// detector ON, and (b) the closely related pointer-dereferencing variant
// of scenario (C) is still caught.
//
// Runs as a campaign on the work-stealing executor; pass --serial for the
// original in-process run.  Output is identical either way.
#include <cstdio>
#include <cstring>
#include <vector>

#include "campaign/campaigns.hpp"
#include "campaign/executor.hpp"

using namespace ptaint::campaign;

int main(int argc, char** argv) {
  Executor::Config config;
  bool serial = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      config.workers = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--serial") == 0) {
      serial = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_table4_false_negatives [--workers N] "
                   "[--serial]\n");
      return 4;
    }
  }

  std::vector<JobResult> results;
  if (serial) {
    results = run_serial_reference("falseneg");
  } else {
    SnapshotCache cache;
    results = Executor(config).run(make_jobs("falseneg", cache));
  }
  std::fputs(format_campaign("falseneg", results).c_str(), stdout);
  return 0;
}
