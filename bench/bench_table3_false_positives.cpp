// Table 3 — False-positive study over the SPEC 2000 INT surrogates.
//
// Regenerates the table's rows: program size, input bytes (all tainted at
// the SYS_READ boundary), instructions executed, and the alert count —
// which must be zero for every program.
#include <cstdio>

#include "core/spec_workloads.hpp"

using namespace ptaint;
using namespace ptaint::core;

int main(int argc, char** argv) {
  const int scale = argc > 1 ? std::atoi(argv[1]) : 4;
  std::printf(
      "== Table 3: False Positive Rate over SPEC 2000 Surrogates "
      "(scale %d) ==\n\n",
      scale);
  std::printf("%-8s %14s %14s %16s %14s %8s %s\n", "program", "image bytes",
              "input bytes", "instructions", "tainted loads", "alerts",
              "result");

  uint64_t total_size = 0, total_input = 0, total_instr = 0;
  int alerts = 0;
  for (const auto& w : make_spec_workloads(scale)) {
    SpecRunRow row = run_spec_workload(w);
    std::printf("%-8s %14llu %14llu %16llu %14llu %8d %s",
                row.name.c_str(),
                static_cast<unsigned long long>(row.program_bytes),
                static_cast<unsigned long long>(row.input_bytes),
                static_cast<unsigned long long>(row.instructions),
                static_cast<unsigned long long>(row.tainted_loads),
                row.alert ? 1 : 0, row.output.c_str());
    total_size += row.program_bytes;
    total_input += row.input_bytes;
    total_instr += row.instructions;
    alerts += row.alert ? 1 : 0;
  }
  std::printf("%-8s %14llu %14llu %16llu %14s %8d\n", "total",
              static_cast<unsigned long long>(total_size),
              static_cast<unsigned long long>(total_input),
              static_cast<unsigned long long>(total_instr), "", alerts);
  std::printf(
      "\npaper: 6586KB programs, 2186KB input, 15,139M instructions, "
      "0 alerts.\n"
      "shape reproduced: every input byte tainted, %d false positives.\n",
      alerts);
  return alerts == 0 ? 0 : 1;
}
