// Interpreter throughput: step interpreter vs superblock engine.
//
// Runs every SPEC surrogate workload under both execution engines and
// reports guest instructions per second, wall time, and the superblock
// speedup.  Only Machine::run() is timed — assembly, loading, and snapshot
// work is excluded — and each cell is the best of five repetitions so a
// descheduled rep cannot understate an engine.
//
//   bench_interpreter_throughput [scale] [json-path]
//
// `scale` sizes the surrogate inputs (default 2); results are written to
// `json-path` (default BENCH_throughput.json) for EXPERIMENTS.md and CI.
// The run aborts with exit 1 if any workload's verdict differs between
// engines — throughput numbers for diverging engines would be meaningless.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/spec_workloads.hpp"

using namespace ptaint;
using namespace ptaint::core;

namespace {

using Clock = std::chrono::steady_clock;

struct Cell {
  double best_s = 1e300;
  uint64_t instructions = 0;
  int stop = 0;
  int exit_status = 0;
  double ips() const { return best_s > 0 ? instructions / best_s : 0.0; }
};

Cell measure(const SpecWorkload& w, const char* engine, int reps) {
  ::setenv("PTAINT_ENGINE", engine, 1);
  Cell cell;
  for (int rep = 0; rep < reps; ++rep) {
    auto machine = prepare_spec_workload(w);
    const auto t0 = Clock::now();
    RunReport r = machine->run();
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    cell.best_s = std::min(cell.best_s, s);
    cell.instructions = r.cpu_stats.instructions;
    cell.stop = static_cast<int>(r.stop);
    cell.exit_status = r.exit_status;
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const int scale = argc > 1 ? std::atoi(argv[1]) : 2;
  const std::string json_path =
      argc > 2 ? argv[2] : "BENCH_throughput.json";
  constexpr int kReps = 5;

  std::printf("== Interpreter throughput: step vs superblock (scale %d) ==\n\n",
              scale);
  std::printf("%-8s %14s %12s %12s %8s\n", "program", "instructions",
              "step Mi/s", "sblock Mi/s", "speedup");

  std::string json = "{\n  \"scale\": " + std::to_string(scale) +
                     ",\n  \"workloads\": [\n";
  double geomean = 1.0;
  int rows = 0;
  bool diverged = false;

  for (const auto& w : make_spec_workloads(scale)) {
    const Cell step = measure(w, "step", kReps);
    const Cell sblock = measure(w, "superblock", kReps);
    if (step.instructions != sblock.instructions ||
        step.stop != sblock.stop || step.exit_status != sblock.exit_status) {
      std::fprintf(stderr,
                   "%s: engines diverge (insts %llu vs %llu) — not a valid "
                   "throughput comparison\n",
                   w.name.c_str(),
                   static_cast<unsigned long long>(step.instructions),
                   static_cast<unsigned long long>(sblock.instructions));
      diverged = true;
    }
    const double speedup = step.best_s / sblock.best_s;
    geomean *= speedup;
    ++rows;
    std::printf("%-8s %14llu %12.2f %12.2f %7.2fx\n", w.name.c_str(),
                static_cast<unsigned long long>(step.instructions),
                step.ips() / 1e6, sblock.ips() / 1e6, speedup);

    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"instructions\": %llu, "
                  "\"step_s\": %.6f, \"superblock_s\": %.6f, "
                  "\"step_ips\": %.0f, \"superblock_ips\": %.0f, "
                  "\"speedup\": %.3f},\n",
                  w.name.c_str(),
                  static_cast<unsigned long long>(step.instructions),
                  step.best_s, sblock.best_s, step.ips(), sblock.ips(),
                  speedup);
    json += buf;
  }

  const double gm = rows > 0 ? std::pow(geomean, 1.0 / rows) : 0.0;
  std::printf("\ngeomean speedup: %.2fx\n", gm);

  if (json.size() >= 2 && json[json.size() - 2] == ',') {
    json.erase(json.size() - 2, 1);  // trailing comma
  }
  json += "  ],\n  \"geomean_speedup\": " + std::to_string(gm) + "\n}\n";
  std::ofstream out(json_path, std::ios::binary);
  out << json;
  std::printf("wrote %s\n", json_path.c_str());

  return diverged ? 1 : 0;
}
