// Interpreter throughput: one column per execution engine.
//
// Runs every SPEC surrogate workload under each engine in kEngines and
// reports guest instructions per second, wall time, and each engine's
// speedup over the reference step interpreter (plus the jit-over-superblock
// ratio, the JIT tier's acceptance metric).  Only Machine::run() is timed —
// assembly, loading, and snapshot work is excluded — and each cell is the
// best of five repetitions so a descheduled rep cannot understate an engine.
// Adding a future engine is one kEngines entry.
//
//   bench_interpreter_throughput [scale] [json-path]
//
// `scale` sizes the surrogate inputs (default 2); results are written to
// `json-path` (default BENCH_throughput.json) for EXPERIMENTS.md and CI.
// The run aborts with exit 1 if any workload's verdict differs between
// engines — throughput numbers for diverging engines would be meaningless.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/spec_workloads.hpp"

using namespace ptaint;
using namespace ptaint::core;

namespace {

using Clock = std::chrono::steady_clock;

// Engine columns, in run order.  Index 0 is the reference baseline every
// other engine's verdict and speedup are measured against.
constexpr const char* kEngines[] = {"step", "superblock", "jit"};
constexpr int kNumEngines = static_cast<int>(std::size(kEngines));

struct Cell {
  double best_s = 1e300;
  uint64_t instructions = 0;
  int stop = 0;
  int exit_status = 0;
  double ips() const { return best_s > 0 ? instructions / best_s : 0.0; }
};

Cell measure(const SpecWorkload& w, const char* engine, int reps) {
  ::setenv("PTAINT_ENGINE", engine, 1);
  Cell cell;
  for (int rep = 0; rep < reps; ++rep) {
    auto machine = prepare_spec_workload(w);
    const auto t0 = Clock::now();
    RunReport r = machine->run();
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    cell.best_s = std::min(cell.best_s, s);
    cell.instructions = r.cpu_stats.instructions;
    cell.stop = static_cast<int>(r.stop);
    cell.exit_status = r.exit_status;
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const int scale = argc > 1 ? std::atoi(argv[1]) : 2;
  const std::string json_path =
      argc > 2 ? argv[2] : "BENCH_throughput.json";
  constexpr int kReps = 5;

  std::printf("== Interpreter throughput by engine (scale %d) ==\n\n", scale);
  std::printf("%-8s %14s", "program", "instructions");
  for (const char* e : kEngines) std::printf(" %11s", (std::string(e) + " Mi/s").c_str());
  for (int i = 1; i < kNumEngines; ++i) {
    std::printf(" %10s", (std::string(kEngines[i]) + " x").c_str());
  }
  std::printf("\n");

  std::string json = "{\n  \"scale\": " + std::to_string(scale) +
                     ",\n  \"engines\": [";
  for (int i = 0; i < kNumEngines; ++i) {
    json += std::string(i ? ", " : "") + "\"" + kEngines[i] + "\"";
  }
  json += "],\n  \"workloads\": [\n";

  std::vector<double> geomean(kNumEngines, 1.0);  // speedup vs kEngines[0]
  int rows = 0;
  bool diverged = false;

  for (const auto& w : make_spec_workloads(scale)) {
    std::vector<Cell> cells;
    for (const char* e : kEngines) cells.push_back(measure(w, e, kReps));
    const Cell& base = cells[0];
    for (int i = 1; i < kNumEngines; ++i) {
      if (cells[i].instructions != base.instructions ||
          cells[i].stop != base.stop ||
          cells[i].exit_status != base.exit_status) {
        std::fprintf(stderr,
                     "%s: %s diverges from %s (insts %llu vs %llu) — not a "
                     "valid throughput comparison\n",
                     w.name.c_str(), kEngines[i], kEngines[0],
                     static_cast<unsigned long long>(cells[i].instructions),
                     static_cast<unsigned long long>(base.instructions));
        diverged = true;
      }
    }
    ++rows;
    std::printf("%-8s %14llu", w.name.c_str(),
                static_cast<unsigned long long>(base.instructions));
    for (const Cell& c : cells) std::printf(" %11.2f", c.ips() / 1e6);
    for (int i = 1; i < kNumEngines; ++i) {
      const double speedup = base.best_s / cells[i].best_s;
      geomean[i] *= speedup;
      std::printf(" %9.2fx", speedup);
    }
    std::printf("\n");

    std::string row = "    {\"name\": \"" + w.name + "\", \"instructions\": " +
                      std::to_string(base.instructions);
    char buf[128];
    for (int i = 0; i < kNumEngines; ++i) {
      std::snprintf(buf, sizeof(buf), ", \"%s_s\": %.6f, \"%s_ips\": %.0f",
                    kEngines[i], cells[i].best_s, kEngines[i], cells[i].ips());
      row += buf;
    }
    for (int i = 1; i < kNumEngines; ++i) {
      std::snprintf(buf, sizeof(buf), ", \"%s_speedup\": %.3f", kEngines[i],
                    base.best_s / cells[i].best_s);
      row += buf;
    }
    json += row + "},\n";
  }

  std::printf("\n");
  std::string gm_json;
  std::vector<double> gm(kNumEngines, 0.0);
  for (int i = 1; i < kNumEngines; ++i) {
    gm[i] = rows > 0 ? std::pow(geomean[i], 1.0 / rows) : 0.0;
    std::printf("geomean %s speedup over %s: %.2fx\n", kEngines[i],
                kEngines[0], gm[i]);
    char buf[96];
    std::snprintf(buf, sizeof(buf), "    \"%s\": %.3f,\n", kEngines[i], gm[i]);
    gm_json += buf;
  }
  // The JIT acceptance metric: jit over superblock.  Per-row ratios
  // multiply, so the ratio of the two geomeans is exactly the geomean of
  // the per-row jit/superblock speedups.
  double jit_vs_superblock = 0.0;
  if (kNumEngines >= 3 && gm[1] > 0) {
    jit_vs_superblock = gm[kNumEngines - 1] / gm[1];
    std::printf("geomean jit speedup over superblock: %.2fx\n",
                jit_vs_superblock);
  }

  if (json.size() >= 2 && json[json.size() - 2] == ',') {
    json.erase(json.size() - 2, 1);  // trailing comma
  }
  json += "  ],\n  \"geomean_speedup\": {\n" + gm_json;
  {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "    \"jit_vs_superblock\": %.3f\n  }\n}\n",
                  jit_vs_superblock);
    json += buf;
  }
  std::ofstream out(json_path, std::ios::binary);
  out << json;
  std::printf("wrote %s\n", json_path.c_str());

  return diverged ? 1 : 0;
}
