// Figure 2 / Section 5.1.1 — the three synthetic attacks, with the paper's
// exact inputs and alert transcripts.
#include <cstdio>
#include <string>

#include "core/machine.hpp"
#include "guest/apps/apps.hpp"
#include "guest/runtime.hpp"

using namespace ptaint;
using namespace ptaint::core;

namespace {

void report(const char* name, const char* paper_line, const RunReport& r) {
  std::printf("%s\n", name);
  if (r.detected()) {
    std::printf("  alert:  %s\n", r.alert_line().c_str());
  } else {
    std::printf("  NOT DETECTED (stop=%d)\n", static_cast<int>(r.stop));
  }
  std::printf("  paper:  %s\n\n", paper_line);
}

}  // namespace

int main() {
  std::printf("== Figure 2: synthetic stack / heap / format-string attacks ==\n\n");

  {
    Machine m;
    m.load_sources(guest::link_with_runtime(guest::apps::exp1_stack()));
    m.os().set_stdin(std::string(24, 'a'));  // the paper's 24 'a' bytes
    report("exp1: stack buffer overflow, input = 'a' x 24",
           "alert at JR $31, return address tainted as 0x61616161", m.run());
  }
  {
    Machine m;
    m.load_sources(guest::link_with_runtime(guest::apps::exp2_heap()));
    // 12 filler + crafted free-chunk header ("bbbb", even) + links ("cccc").
    m.os().set_stdin(std::string(12, 'a') + "bbbb" + "cccc");
    report("exp2: heap corruption, overflow into the next free chunk",
           "alert at LW/SW in free(), forward link tainted (0x61616161 "
           "in the paper's header-less chunk layout)",
           m.run());
  }
  {
    Machine m;
    m.load_sources(guest::link_with_runtime(guest::apps::exp3_format()));
    m.os().net().add_session({"abcd%x%x%x%n"});
    report("exp3: format string, input = abcd%x%x%x%n",
           "alert at SW $21,0($3) in vfprintf, $3 = 0x64636261", m.run());
  }
  return 0;
}
