// Baseline comparison (the paper's introduction): NX page protection and
// control-flow-integrity baselines vs pointer-taintedness detection,
// across the attack delivery techniques.
//
//   attack                      NX-only    ctrl-only   ptr-taint
//   injected shellcode          DETECTED   DETECTED    DETECTED
//   return-to-existing-code     missed     DETECTED    DETECTED
//   non-control-data (uid, cfg, missed     missed      DETECTED
//     URL pointer, links...)
#include <cstdio>

#include "core/attack.hpp"

using namespace ptaint;
using namespace ptaint::core;

namespace {

cpu::TaintPolicy nx_only() {
  cpu::TaintPolicy p;
  p.mode = cpu::DetectionMode::kOff;
  p.nx_protection = true;
  return p;
}

cpu::TaintPolicy mode_only(cpu::DetectionMode m) {
  cpu::TaintPolicy p;
  p.mode = m;
  return p;
}

const char* cell(const ScenarioResult& r) {
  return r.outcome == Outcome::kDetected ? "DETECTED" : "missed";
}

}  // namespace

int main() {
  std::printf("== Baselines: NX / control-data-only / pointer taintedness ==\n\n");
  std::printf("%-28s %-10s %-10s %-10s\n", "attack", "NX-only", "ctrl-only",
              "ptr-taint");

  const AttackId ids[] = {
      AttackId::kExp1Shellcode, AttackId::kExp1Stack, AttackId::kExp2Heap,
      AttackId::kExp3Format,    AttackId::kWuFtpdFormat,
      AttackId::kNullHttpdHeap, AttackId::kGhttpdStack,
      AttackId::kTracerouteDoubleFree, AttackId::kGlobExpansion,
  };
  int nx_hits = 0, ctrl_hits = 0, pt_hits = 0, total = 0;
  for (AttackId id : ids) {
    auto scenario = make_scenario(id);
    auto nx = scenario->run_attack_with(nx_only());
    auto ctrl =
        scenario->run_attack_with(mode_only(cpu::DetectionMode::kControlDataOnly));
    auto pt =
        scenario->run_attack_with(mode_only(cpu::DetectionMode::kPointerTaint));
    std::printf("%-28s %-10s %-10s %-10s\n", scenario->name().c_str(),
                cell(nx), cell(ctrl), cell(pt));
    ++total;
    nx_hits += nx.outcome == Outcome::kDetected;
    ctrl_hits += ctrl.outcome == Outcome::kDetected;
    pt_hits += pt.outcome == Outcome::kDetected;
  }
  std::printf("\ncoverage: NX %d/%d, control-data %d/%d, "
              "pointer-taintedness %d/%d\n",
              nx_hits, total, ctrl_hits, total, pt_hits, total);
  std::printf("\npaper framing reproduced: each older baseline guards one\n"
              "delivery technique; tainted-pointer dereference subsumes "
              "them.\n");
  return pt_hits == total ? 0 : 1;
}
