// Table 2 — Attacking WU-FTPD on the proposed architecture.
//
// Regenerates the paper's attack/detection transcript: the FTP dialogue
// (greeting, USER, PASS, the malicious SITE EXEC) and the resulting alert
//   sw $21,0($3)   $3=0x1002bc20
#include <cstdio>

#include "core/attack.hpp"

using namespace ptaint;
using namespace ptaint::core;

int main() {
  std::printf("== Table 2: Attacking WU-FTPD on the Proposed Architecture ==\n\n");

  auto scenario = make_scenario(AttackId::kWuFtpdFormat);
  auto r = scenario->run_attack(cpu::DetectionMode::kPointerTaint);

  // Client commands, as the paper lists them.
  std::printf("%-11s %s\n", "FTP Client", "user user1");
  std::printf("%-11s %s\n", "FTP Client", "pass xxxxxxx");
  std::printf("%-11s %s\n", "FTP Client",
              "site exec \\x20\\xbc\\x02\\x10%x%x%x%x%x%x%n");
  std::printf("\nServer replies (virtual network transcript):\n");
  if (!r.report.net_transcripts.empty()) {
    std::printf("%s\n", r.report.net_transcripts[0].c_str());
  }

  std::printf("Result: %s\n", to_string(r.outcome));
  if (r.report.alert) {
    std::printf("Alert:  %s\n", r.report.alert_line().c_str());
    std::printf("        (paper: \"44d7b0: sw $21,0($3)   $3=0x1002bc20\")\n");
  }

  std::printf("\n-- same attack under the control-data-only baseline --\n");
  auto base = scenario->run_attack(cpu::DetectionMode::kControlDataOnly);
  std::printf("Result: %s — %s\n", to_string(base.outcome),
              base.detail.c_str());

  std::printf("\n-- same attack unprotected --\n");
  auto off = scenario->run_attack(cpu::DetectionMode::kOff);
  std::printf("Result: %s — %s\n", to_string(off.outcome), off.detail.c_str());
  return 0;
}
