// Section 5.4 — software processing overhead of kernel-side tainting,
// plus the static check-elision counterpart.
//
// Part 1: the paper estimates the cost of marking input buffers tainted at
// one extra kernel instruction per input byte and reports 0.002%-0.2% of
// the SPEC programs' executed instructions.  This bench reproduces that
// ratio from measured input sizes and instruction counts.
//
// Part 2: the src/analysis static analyzer proves most dereference sites
// can never carry a tainted address; the interpreter then skips the
// per-dereference detection check at those PCs.  The second table reports
// the analysis coverage (sites proven clean) and the measured interpreter
// speedup, with identical verdicts by construction (docs/ANALYSIS.md).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "analysis/cfg.hpp"
#include "analysis/taint_analyzer.hpp"
#include "analysis/vsa.hpp"
#include "core/spec_workloads.hpp"

using namespace ptaint;
using namespace ptaint::core;

namespace {

using Clock = std::chrono::steady_clock;

double run_ms(Machine& m) {
  const auto t0 = Clock::now();
  (void)m.run();
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const int scale = argc > 1 ? std::atoi(argv[1]) : 2;
  std::printf("== Section 5.4: software tainting overhead (scale %d) ==\n\n",
              scale);
  std::printf("%-8s %14s %16s %14s\n", "program", "input bytes",
              "instructions", "overhead");
  for (const auto& w : make_spec_workloads(scale)) {
    SpecRunRow row = run_spec_workload(w);
    // One tainting instruction per input byte, as in the paper's estimate.
    const double overhead =
        row.instructions == 0
            ? 0.0
            : 100.0 * static_cast<double>(row.input_bytes) / row.instructions;
    std::printf("%-8s %14llu %16llu %13.4f%%\n", row.name.c_str(),
                static_cast<unsigned long long>(row.input_bytes),
                static_cast<unsigned long long>(row.instructions), overhead);
  }
  std::printf("\npaper: 0.002%% - 0.2%% across SPEC 2000; the ratio is "
              "input-boundedness, which the surrogates reproduce.\n");

  std::printf("\n== Static check-elision: coverage and interpreter "
              "speedup ==\n\n");
  std::printf("%-8s %8s %8s %8s %9s %10s %10s %8s\n", "program", "sites",
              "gen1", "gen2", "elidable", "base ms", "elide ms", "speedup");
  constexpr int kReps = 3;  // min-of-3 rejects scheduler noise
  double base_total = 0.0, elide_total = 0.0;
  for (const auto& w : make_spec_workloads(scale)) {
    const analysis::Cfg cfg(prepare_spec_workload(w)->program());
    const analysis::TaintAnalysis ta = analysis::analyze_taint(cfg, {});
    const analysis::Gen2Elision gen2 = analysis::gen2_elision(cfg, {});
    double base_ms = 1e300, elide_ms = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
      auto base = prepare_spec_workload(w);
      base_ms = std::min(base_ms, run_ms(*base));
      auto elided = prepare_spec_workload(w);
      elided->enable_static_elision();  // installs the gen-2 union table
      elide_ms = std::min(elide_ms, run_ms(*elided));
    }
    base_total += base_ms;
    elide_total += elide_ms;

    std::printf(
        "%-8s %8zu %8zu %8zu %8.1f%% %10.1f %10.1f %7.2fx\n", w.name.c_str(),
        ta.sites.size(), gen2.gen1_clean, gen2.gen2_clean,
        ta.sites.empty() ? 0.0
                         : 100.0 * static_cast<double>(gen2.gen2_clean) /
                               static_cast<double>(ta.sites.size()),
        base_ms, elide_ms, elide_ms > 0.0 ? base_ms / elide_ms : 0.0);
  }
  std::printf("%-8s %8s %8s %8s %9s %10.1f %10.1f %7.2fx\n", "total", "", "",
              "", "", base_total, elide_total,
              elide_total > 0.0 ? base_total / elide_total : 0.0);
  std::printf("\nverdicts are unchanged by construction: the gen-2 table "
              "(register-only analyzer\nunioned with the value-set prover, "
              "docs/ANALYSIS.md) only covers sites proven\nuntainted on "
              "every path (ptaint-campaign --check --elide pins this on "
              "the full\nmatrix; --static-check adds the bidirectional "
              "alert/witness consistency leg).\n");
  return 0;
}
