// Section 5.4 — software processing overhead of kernel-side tainting.
//
// The paper estimates the cost of marking input buffers tainted at one
// extra kernel instruction per input byte and reports 0.002%-0.2% of the
// SPEC programs' executed instructions.  This bench reproduces that ratio
// from measured input sizes and instruction counts.
#include <cstdio>

#include "core/spec_workloads.hpp"

using namespace ptaint;
using namespace ptaint::core;

int main(int argc, char** argv) {
  const int scale = argc > 1 ? std::atoi(argv[1]) : 2;
  std::printf("== Section 5.4: software tainting overhead (scale %d) ==\n\n",
              scale);
  std::printf("%-8s %14s %16s %14s\n", "program", "input bytes",
              "instructions", "overhead");
  for (const auto& w : make_spec_workloads(scale)) {
    SpecRunRow row = run_spec_workload(w);
    // One tainting instruction per input byte, as in the paper's estimate.
    const double overhead =
        row.instructions == 0
            ? 0.0
            : 100.0 * static_cast<double>(row.input_bytes) / row.instructions;
    std::printf("%-8s %14llu %16llu %13.4f%%\n", row.name.c_str(),
                static_cast<unsigned long long>(row.input_bytes),
                static_cast<unsigned long long>(row.instructions), overhead);
  }
  std::printf("\npaper: 0.002%% - 0.2%% across SPEC 2000; the ratio is "
              "input-boundedness, which the surrogates reproduce.\n");
  return 0;
}
