// Table 1 — ALU taintedness propagation rules.
//
// Measures the taint-tracking logic's software cost per instruction class
// (google-benchmark) and the end-to-end simulator throughput with tracking
// on/off, and prints the Table 1 rule map the hardware implements.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/machine.hpp"
#include "cpu/taint_unit.hpp"

namespace {

using namespace ptaint;
using cpu::TaintOpInputs;
using cpu::TaintPolicy;
using cpu::TaintUnit;
using isa::Op;

TaintOpInputs make_inputs(Op op, uint8_t ta, uint8_t tb) {
  TaintOpInputs in;
  in.inst.op = op;
  in.inst.rs = 4;
  in.inst.rt = 5;
  in.inst.rd = 2;
  in.a = {0x61626364, ta};
  in.b = {0x00000fff, tb};
  return in;
}

void BM_PropagateDefaultAlu(benchmark::State& state) {
  TaintPolicy policy;
  TaintUnit unit(policy);
  auto in = make_inputs(Op::kAddu, 0b0001, 0b1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(unit.propagate(in).result_taint);
  }
}
BENCHMARK(BM_PropagateDefaultAlu);

void BM_PropagateShiftSmear(benchmark::State& state) {
  TaintPolicy policy;
  TaintUnit unit(policy);
  auto in = make_inputs(Op::kSll, 0b0001, 0);
  in.b_is_immediate = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(unit.propagate(in).result_taint);
  }
}
BENCHMARK(BM_PropagateShiftSmear);

void BM_PropagateAndZeroRule(benchmark::State& state) {
  TaintPolicy policy;
  TaintUnit unit(policy);
  auto in = make_inputs(Op::kAnd, 0b1111, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(unit.propagate(in).result_taint);
  }
}
BENCHMARK(BM_PropagateAndZeroRule);

void BM_PropagateCompareUntaint(benchmark::State& state) {
  TaintPolicy policy;
  TaintUnit unit(policy);
  auto in = make_inputs(Op::kSlt, 0b1111, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(unit.propagate(in).untaint_sources);
  }
}
BENCHMARK(BM_PropagateCompareUntaint);

// End-to-end: simulated instructions/second over an ALU-heavy kernel with
// the paper policy vs detection off.
void run_kernel(cpu::DetectionMode mode, benchmark::State& state) {
  core::MachineConfig cfg;
  cfg.policy.mode = mode;
  for (auto _ : state) {
    state.PauseTiming();
    core::Machine m(cfg);
    m.load_source(R"(
      .text
      _start:
        li $t0, 0
        li $t1, 60000
      loop:
        addu $t2, $t0, $t1
        xor $t3, $t2, $t0
        sll $t4, $t3, 3
        and $t5, $t4, $t2
        slt $t6, $t5, $t1
        addiu $t0, $t0, 1
        bne $t0, $t1, loop
        li $v0, 1
        li $a0, 0
        syscall
    )");
    state.ResumeTiming();
    benchmark::DoNotOptimize(m.run().cpu_stats.instructions);
  }
  state.SetItemsProcessed(state.iterations() * 420000);
}

void BM_SimThroughputPaperPolicy(benchmark::State& state) {
  run_kernel(cpu::DetectionMode::kPointerTaint, state);
}
BENCHMARK(BM_SimThroughputPaperPolicy);

void BM_SimThroughputDetectionOff(benchmark::State& state) {
  run_kernel(cpu::DetectionMode::kOff, state);
}
BENCHMARK(BM_SimThroughputDetectionOff);

void print_table1() {
  std::printf("== Table 1: Taintedness Propagation by ALU Instructions ==\n");
  std::printf("%-34s %s\n", "ALU instruction type", "taintedness propagation");
  std::printf("%-34s %s\n", "default (e.g. op R1,R2,R3)",
              "T(R1) = T(R2) OR T(R3), per byte");
  std::printf("%-34s %s\n", "shift",
              "adjacent byte along shift direction also tainted");
  std::printf("%-34s %s\n", "AND",
              "byte AND-ed with an untainted zero is untainted");
  std::printf("%-34s %s\n", "XOR R1,R2,R2", "T(R1) = 0000 (zeroing idiom)");
  std::printf("%-34s %s\n", "compare",
              "operand registers untainted (validated data)");
  std::printf("tracking-logic gate estimate: ~%d NAND-equivalents "
              "(vs ~1500+ for a 32-bit adder)\n\n",
              ptaint::cpu::TaintUnit::gate_cost());
}

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
