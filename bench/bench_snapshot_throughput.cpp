// Snapshot restore throughput: COW delta restore vs full deep copy.
//
// Part 1 — restore microbench.  Each SPEC surrogate boots once and is
// snapshotted; a single machine then loops { run a slice (dirtying pages),
// restore } under both memory modes.  Full-copy mode (MachineConfig::
// no_cow) deep-copies every mapped page per restore; COW mode pays only
// for the pages the slice dirtied (a delta restore).  Only the restore
// calls are timed; each cell is the best of three repetitions.
//
// Part 2 — forked-campaign wall time.  The ablation campaign runs on the
// parallel engine under both modes; verdicts must match exactly, and the
// wall-time ratio shows what COW restores buy an end-to-end sweep.
//
// Part 3 — content-addressed store (DESIGN.md §13).  The ablation
// campaign runs store-backed; its key set interns every built snapshot's
// pages, and the columns show what the store buys: page dedup ratio
// across keys, store bytes per snapshot, RLE compression ratio once the
// working set is evicted, and rehydration rates from each tier (hot
// store pages, compressed images, disk files).
//
//   bench_snapshot_throughput [scale] [json-path]
//   bench_snapshot_throughput --check
//
// Results go to `json-path` (default BENCH_snapshot.json) for
// EXPERIMENTS.md and CI.  `--check` skips the timing reps and instead
// verifies run-report identity between the modes: interleaved
// restore/run/report cycles per workload, store dehydrate/hydrate
// round-trips (byte-identical pages, identical reports from every tier),
// then the coverage campaign under {step, superblock} x {COW, full-copy}
// plus store-backed legs on all three engines — exit 1 on any divergence
// (made for the sanitizer CI legs, where timing is meaningless anyway;
// the store legs use a self-contained temp-dir disk tier).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaigns.hpp"
#include "campaign/executor.hpp"
#include "campaign/snapshot_cache.hpp"
#include "core/snapshot_io.hpp"
#include "core/spec_workloads.hpp"
#include "mem/page_store.hpp"

using namespace ptaint;
using namespace ptaint::core;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// One workload's restore-rate measurement for one memory mode.
struct RestoreCell {
  double restores_per_s = 0.0;
  uint64_t dirty_pages = 0;   // pages the inter-restore slice dirtied
  uint64_t mapped_pages = 0;  // snapshot footprint
};

constexpr int kRestores = 200;        // restores per repetition
constexpr uint64_t kSlice = 50'000;   // guest instructions between restores

RestoreCell measure_restores(const MachineSnapshot& snap, bool no_cow,
                             int reps) {
  RestoreCell cell;
  for (int rep = 0; rep < reps; ++rep) {
    MachineConfig cfg;
    cfg.no_cow = no_cow;
    Machine machine(cfg);
    machine.restore(snap);  // first restore is full under either mode
    double restore_s = 0.0;
    for (int i = 0; i < kRestores; ++i) {
      machine.run_for(kSlice);
      cell.dirty_pages = machine.memory().dirty_page_count();
      const auto t0 = Clock::now();
      machine.restore(snap);
      restore_s += seconds_since(t0);
    }
    cell.restores_per_s =
        std::max(cell.restores_per_s, kRestores / restore_s);
  }
  cell.mapped_pages = snap.memory.mapped_pages();
  return cell;
}

/// Fingerprint of a run's observable outcome; COW and full-copy modes must
/// never disagree on it.
std::string report_fingerprint(const RunReport& r) {
  std::ostringstream ss;
  ss << static_cast<int>(r.stop) << "|" << r.exit_status << "|"
     << r.cpu_stats.instructions << "|" << r.tainted_memory_bytes << "|"
     << (r.alert ? r.alert_line() : "") << "|" << r.alert_function;
  return ss.str();
}

/// --check leg 1: interleaved restore/run/report cycles must produce the
/// same report sequence under COW and full-copy memory.
bool check_restore_identity(const SpecWorkload& w,
                            const MachineSnapshot& snap) {
  std::vector<std::string> prints[2];
  for (int mode = 0; mode < 2; ++mode) {
    MachineConfig cfg;
    cfg.no_cow = mode == 1;
    Machine machine(cfg);
    for (int i = 0; i < 6; ++i) {
      machine.restore(snap);
      machine.run_for(kSlice * (1 + i % 3));  // vary the dirtied set
      prints[mode].push_back(report_fingerprint(machine.report()));
    }
  }
  if (prints[0] == prints[1]) return true;
  std::fprintf(stderr, "%s: COW and full-copy runs diverge\n",
               w.name.c_str());
  return false;
}

/// Runs the named campaign on the parallel engine; returns wall seconds.
/// With `store`, the snapshot cache is store-backed and `store_stats`
/// (when non-null) receives its final statistics.
double run_campaign(const std::string& name, bool no_cow,
                    std::optional<cpu::Engine> engine,
                    std::vector<campaign::JobResult>& out,
                    const campaign::StoreOptions* store = nullptr,
                    campaign::SnapshotCache::Stats* store_stats = nullptr) {
  if (no_cow) {
    ::setenv("PTAINT_NO_COW", "1", 1);
  } else {
    ::unsetenv("PTAINT_NO_COW");
  }
  campaign::SnapshotCache cache(store ? *store
                                      : campaign::StoreOptions::from_env());
  double s = 0.0;
  {
    campaign::Executor::Config config;
    config.workers = 4;
    campaign::Executor executor(config);
    const std::vector<campaign::Job> jobs =
        campaign::make_jobs(name, cache, /*spec_scale=*/1, /*elide=*/false,
                            engine);
    const auto t0 = Clock::now();
    out = executor.run(jobs);
    s = seconds_since(t0);
  }
  if (store_stats) *store_stats = cache.stats();
  ::unsetenv("PTAINT_NO_COW");
  return s;
}

/// Fresh temp directory for a disk tier; benches/checks stay
/// self-contained (no environment needed, removed afterwards).
std::string make_temp_dir() {
  char tmpl[] = "/tmp/ptaint-bench-store-XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  return dir ? dir : "";
}

bool pages_identical(const mem::TaintedMemory& a,
                     const mem::TaintedMemory& b) {
  auto pa = a.page_blocks();
  auto pb = b.page_blocks();
  const auto by_idx = [](const auto& x, const auto& y) {
    return x.first < y.first;
  };
  std::sort(pa.begin(), pa.end(), by_idx);
  std::sort(pb.begin(), pb.end(), by_idx);
  if (pa.size() != pb.size()) return false;
  for (size_t i = 0; i < pa.size(); ++i) {
    if (pa[i].first != pb[i].first) return false;
    const auto& x = *pa[i].second;
    const auto& y = *pb[i].second;
    if (x.data != y.data || x.taint != y.taint || x.aprov != y.aprov ||
        x.tainted_bytes != y.tainted_bytes || x.addr_bytes != y.addr_bytes) {
      return false;
    }
  }
  return true;
}

std::string engine_name(cpu::Engine e) {
  switch (e) {
    case cpu::Engine::kStep: return "step";
    case cpu::Engine::kSuperblock: return "superblock";
    case cpu::Engine::kJit: return "jit";
  }
  return "?";
}

constexpr cpu::Engine kAllEngines[] = {
    cpu::Engine::kStep, cpu::Engine::kSuperblock, cpu::Engine::kJit};

/// --check leg 2: a snapshot dehydrated into the store and hydrated back
/// from every tier (hot pages, compressed images, disk files) must be
/// byte-identical and produce the same reports on all three engines.
bool check_store_identity(const SpecWorkload& w) {
  auto machine = prepare_spec_workload(w, {});
  MachineSnapshot snap = machine->snapshot();
  machine.reset();  // the store must end up the blocks' only owner

  std::vector<std::string> reference;
  for (const cpu::Engine engine : kAllEngines) {
    MachineConfig cfg;
    cfg.engine = engine;
    Machine m(cfg);
    m.restore(snap);
    m.run_for(kSlice * 2);
    reference.push_back(report_fingerprint(m.report()));
  }

  const std::string dir = make_temp_dir();
  bool ok = true;
  {
    mem::PageStore::Config sc;
    sc.hot_page_budget = 1u << 16;
    sc.disk_dir = dir;
    mem::PageStore store(std::move(sc));
    auto stored = core::dehydrate_snapshot(snap, store);
    if (!stored) {
      std::fprintf(stderr, "%s: snapshot would not dehydrate\n",
                   w.name.c_str());
      std::filesystem::remove_all(dir);
      return false;
    }
    store.flush();
    // Keep a pristine page image to diff against, then release the live
    // snapshot so drop_caches() can actually evict.
    mem::TaintedMemory pristine;
    pristine.deep_copy_from(snap.memory);
    snap = MachineSnapshot{};

    for (const char* tier : {"hot", "compressed", "disk"}) {
      if (std::string(tier) == "compressed") store.drop_caches(false);
      if (std::string(tier) == "disk") store.drop_caches(true);
      auto hydrated = core::hydrate_snapshot(*stored, store);
      if (!hydrated) {
        std::fprintf(stderr, "%s: hydrate from %s tier failed\n",
                     w.name.c_str(), tier);
        ok = false;
        continue;
      }
      if (!pages_identical(pristine, hydrated->memory)) {
        std::fprintf(stderr, "%s: %s-tier pages differ from the original\n",
                     w.name.c_str(), tier);
        ok = false;
      }
      for (size_t e = 0; e < std::size(kAllEngines); ++e) {
        MachineConfig cfg;
        cfg.engine = kAllEngines[e];
        Machine m(cfg);
        m.restore(*hydrated);
        m.run_for(kSlice * 2);
        if (report_fingerprint(m.report()) != reference[e]) {
          std::fprintf(stderr, "%s: %s-tier restore diverges on %s\n",
                       w.name.c_str(), tier,
                       engine_name(kAllEngines[e]).c_str());
          ok = false;
        }
      }
      // Drop the hydrated image before switching tiers so its blocks
      // return to the store as sole owner.
    }
  }
  std::filesystem::remove_all(dir);
  return ok;
}

int run_check() {
  ::unsetenv("PTAINT_NO_COW");
  bool ok = true;
  for (const auto& w : make_spec_workloads(1)) {
    {
      const auto machine = prepare_spec_workload(w, {});
      const MachineSnapshot snap = machine->snapshot();
      ok = check_restore_identity(w, snap) && ok;
    }
    ok = check_store_identity(w) && ok;
  }
  // Coverage campaign under every engine x memory-mode combination; all
  // four verdict vectors must agree with the first.
  std::vector<campaign::JobResult> reference;
  run_campaign("coverage", /*no_cow=*/false, cpu::Engine::kStep, reference);
  for (const cpu::Engine engine :
       {cpu::Engine::kStep, cpu::Engine::kSuperblock}) {
    for (const bool no_cow : {false, true}) {
      std::vector<campaign::JobResult> results;
      run_campaign("coverage", no_cow, engine, results);
      const std::vector<std::string> diffs =
          campaign::diff_verdicts(results, reference);
      if (!diffs.empty()) {
        std::fprintf(stderr, "coverage (%s, %s) diverges:\n",
                     engine == cpu::Engine::kStep ? "step" : "superblock",
                     no_cow ? "full-copy" : "cow");
        for (const std::string& d : diffs) {
          std::fprintf(stderr, "  %s\n", d.c_str());
        }
        ok = false;
      }
    }
  }
  // Store-backed coverage legs on all three engines, with an aggressive
  // one-snapshot hot budget (every shared boot rehydrates from store
  // pages) and a self-contained disk tier; verdicts must still match the
  // plain step reference exactly.
  const std::string store_dir = make_temp_dir();
  for (const cpu::Engine engine : kAllEngines) {
    campaign::StoreOptions sopts;
    sopts.enabled = true;
    sopts.hot_snapshots = 1;
    sopts.disk_dir = store_dir;
    std::vector<campaign::JobResult> results;
    campaign::SnapshotCache::Stats cs;
    run_campaign("coverage", /*no_cow=*/false, engine, results, &sopts, &cs);
    const std::vector<std::string> diffs =
        campaign::diff_verdicts(results, reference);
    if (!diffs.empty()) {
      std::fprintf(stderr, "coverage (%s, store-backed) diverges:\n",
                   engine_name(engine).c_str());
      for (const std::string& d : diffs) {
        std::fprintf(stderr, "  %s\n", d.c_str());
      }
      ok = false;
    }
    if (!cs.store_enabled) {
      std::fprintf(stderr, "store-backed coverage leg ran without a store\n");
      ok = false;
    }
  }
  std::filesystem::remove_all(store_dir);
  std::printf("check: COW and full-copy memory are observably identical: %s\n",
              ok ? "yes" : "NO");
  std::printf("check: store-backed restores byte- and verdict-identical on "
              "step, superblock and jit: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--check") return run_check();

  const int scale = argc > 1 ? std::atoi(argv[1]) : 1;
  const std::string json_path = argc > 2 ? argv[2] : "BENCH_snapshot.json";
  constexpr int kReps = 3;
  ::unsetenv("PTAINT_NO_COW");

  std::printf(
      "== Snapshot restore throughput: COW delta vs full copy (scale %d) "
      "==\n\n",
      scale);
  std::printf("%-8s %7s %7s %14s %14s %8s\n", "program", "pages", "dirty",
              "full rest/s", "cow rest/s", "speedup");

  std::string json = "{\n  \"scale\": " + std::to_string(scale) +
                     ",\n  \"workloads\": [\n";
  double geomean = 1.0;
  int rows = 0;

  for (const auto& w : make_spec_workloads(scale)) {
    const auto machine = prepare_spec_workload(w, {});
    const MachineSnapshot snap = machine->snapshot();
    const RestoreCell full = measure_restores(snap, /*no_cow=*/true, kReps);
    const RestoreCell cow = measure_restores(snap, /*no_cow=*/false, kReps);
    const double speedup =
        full.restores_per_s > 0 ? cow.restores_per_s / full.restores_per_s
                                : 0.0;
    geomean *= speedup;
    ++rows;
    std::printf("%-8s %7llu %7llu %14.0f %14.0f %7.2fx\n", w.name.c_str(),
                static_cast<unsigned long long>(cow.mapped_pages),
                static_cast<unsigned long long>(cow.dirty_pages),
                full.restores_per_s, cow.restores_per_s, speedup);

    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"mapped_pages\": %llu, "
                  "\"dirty_pages\": %llu, \"full_restores_per_s\": %.0f, "
                  "\"cow_restores_per_s\": %.0f, \"speedup\": %.3f},\n",
                  w.name.c_str(),
                  static_cast<unsigned long long>(cow.mapped_pages),
                  static_cast<unsigned long long>(cow.dirty_pages),
                  full.restores_per_s, cow.restores_per_s, speedup);
    json += buf;
  }

  const double gm = rows > 0 ? std::pow(geomean, 1.0 / rows) : 0.0;
  std::printf("\ngeomean restore speedup: %.2fx\n", gm);
  if (json.size() >= 2 && json[json.size() - 2] == ',') {
    json.erase(json.size() - 2, 1);  // trailing comma
  }
  json += "  ],\n  \"geomean_restore_speedup\": " + std::to_string(gm);

  // Part 2: the ablation campaign end to end, both modes, verdicts diffed.
  std::vector<campaign::JobResult> cow_results, full_results;
  double cow_s = 1e300, full_s = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    cow_s = std::min(cow_s, run_campaign("ablation", false, {}, cow_results));
    full_s =
        std::min(full_s, run_campaign("ablation", true, {}, full_results));
  }
  const std::vector<std::string> diffs =
      campaign::diff_verdicts(cow_results, full_results);
  if (!diffs.empty()) {
    std::fprintf(stderr, "ablation verdicts differ between COW and "
                         "full-copy memory:\n");
    for (const std::string& d : diffs) {
      std::fprintf(stderr, "  %s\n", d.c_str());
    }
    return 1;
  }
  const double campaign_speedup = cow_s > 0 ? full_s / cow_s : 0.0;
  std::printf("ablation campaign: full %.2fs vs cow %.2fs (%.2fx), "
              "%zu verdicts identical\n",
              full_s, cow_s, campaign_speedup, cow_results.size());

  char buf[256];
  std::snprintf(buf, sizeof(buf),
                ",\n  \"campaign\": {\"name\": \"ablation\", "
                "\"full_s\": %.3f, \"cow_s\": %.3f, \"speedup\": %.3f}",
                full_s, cow_s, campaign_speedup);
  json += buf;

  // Part 3: the same ablation campaign, store-backed.  One live cache so
  // the store survives the run: the key set (shared boots x policy
  // variants) interns into it, and afterwards we force the eviction tiers
  // on the final page population to measure compression and per-tier
  // rehydration rates.
  campaign::StoreOptions sopts;
  sopts.enabled = true;
  campaign::SnapshotCache scache(sopts);
  std::vector<campaign::JobResult> store_results;
  double store_s = 0.0;
  {
    campaign::Executor::Config config;
    config.workers = 4;
    campaign::Executor executor(config);
    const std::vector<campaign::Job> jobs = campaign::make_jobs(
        "ablation", scache, /*spec_scale=*/1, /*elide=*/false, {});
    const auto t0 = Clock::now();
    store_results = executor.run(jobs);
    store_s = seconds_since(t0);
  }
  const std::vector<std::string> sdiffs =
      campaign::diff_verdicts(store_results, cow_results);
  if (!sdiffs.empty()) {
    std::fprintf(stderr,
                 "ablation verdicts differ between plain and store-backed "
                 "caches:\n");
    for (const std::string& d : sdiffs) {
      std::fprintf(stderr, "  %s\n", d.c_str());
    }
    return 1;
  }
  const campaign::SnapshotCache::Stats cs = scache.stats();
  const double dedup =
      cs.store.canonical_pages > 0
          ? static_cast<double>(cs.store.interned_refs) /
                static_cast<double>(cs.store.canonical_pages)
          : 0.0;
  const double bytes_per_snapshot =
      cs.builds > 0 ? static_cast<double>(cs.store.canonical_pages) *
                          mem::PageStore::kPlaneBytes / cs.builds
                    : 0.0;
  // Force every canonical page through RLE to read the compression ratio
  // over the whole population (not just whatever LRU already evicted).
  scache.drop_hydrated();
  scache.store()->drop_caches(/*compressed_images=*/false);
  const mem::PageStore::Stats ps = scache.store()->stats();
  const double compression =
      ps.compressed_bytes > 0
          ? static_cast<double>(ps.uncompressed_bytes) / ps.compressed_bytes
          : 0.0;
  std::printf(
      "ablation store-backed: %.2fs, %llu refs -> %llu canonical pages "
      "(%.2fx dedup), %.1f KiB/snapshot, %.2fx RLE compression\n",
      store_s, static_cast<unsigned long long>(cs.store.interned_refs),
      static_cast<unsigned long long>(cs.store.canonical_pages), dedup,
      bytes_per_snapshot / 1024.0, compression);

  // Per-tier rehydration rates on one workload snapshot: hot store pages,
  // compressed images, disk files (self-contained temp dir).
  double tier_rate[3] = {0.0, 0.0, 0.0};
  {
    const auto workloads = make_spec_workloads(scale);
    auto tm = prepare_spec_workload(workloads.front(), {});
    MachineSnapshot tsnap = tm->snapshot();
    tm.reset();
    const std::string tier_dir = make_temp_dir();
    {
      mem::PageStore::Config pc;
      pc.disk_dir = tier_dir;
      mem::PageStore tstore(std::move(pc));
      const auto stored = core::dehydrate_snapshot(tsnap, tstore);
      tstore.flush();
      tsnap = MachineSnapshot{};  // store must own the blocks to evict
      if (stored) {
        const int kHydrates = 25 * scale;
        for (int tier = 0; tier < 3; ++tier) {
          double s = 0.0;
          for (int i = 0; i < kHydrates; ++i) {
            if (tier >= 1) tstore.drop_caches(/*compressed_images=*/false);
            if (tier == 2) tstore.drop_caches(/*compressed_images=*/true);
            const auto t0 = Clock::now();
            const auto hydrated = core::hydrate_snapshot(*stored, tstore);
            s += seconds_since(t0);
            if (!hydrated) {
              std::fprintf(stderr, "tier %d hydrate failed\n", tier);
              return 1;
            }
          }
          tier_rate[tier] = s > 0 ? kHydrates / s : 0.0;
        }
      }
    }
    std::filesystem::remove_all(tier_dir);
  }
  std::printf(
      "store hydrate rates (%s): hot %.0f/s, compressed %.0f/s, "
      "disk %.0f/s\n",
      make_spec_workloads(scale).front().name.c_str(), tier_rate[0],
      tier_rate[1], tier_rate[2]);

  char sbuf[768];
  std::snprintf(
      sbuf, sizeof(sbuf),
      ",\n  \"store\": {\"campaign_s\": %.3f, \"canonical_pages\": %llu, "
      "\"interned_refs\": %llu, \"dedup_ratio\": %.3f, "
      "\"bytes_per_snapshot\": %.0f, \"uncompressed_bytes\": %llu, "
      "\"compressed_bytes\": %llu, \"compression_ratio\": %.3f, "
      "\"hydrate_hot_per_s\": %.0f, \"hydrate_compressed_per_s\": %.0f, "
      "\"hydrate_disk_per_s\": %.0f}\n}\n",
      store_s, static_cast<unsigned long long>(cs.store.canonical_pages),
      static_cast<unsigned long long>(cs.store.interned_refs), dedup,
      bytes_per_snapshot, static_cast<unsigned long long>(ps.uncompressed_bytes),
      static_cast<unsigned long long>(ps.compressed_bytes), compression,
      tier_rate[0], tier_rate[1], tier_rate[2]);
  json += sbuf;
  std::ofstream out(json_path, std::ios::binary);
  out << json;
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
