// Snapshot restore throughput: COW delta restore vs full deep copy.
//
// Part 1 — restore microbench.  Each SPEC surrogate boots once and is
// snapshotted; a single machine then loops { run a slice (dirtying pages),
// restore } under both memory modes.  Full-copy mode (MachineConfig::
// no_cow) deep-copies every mapped page per restore; COW mode pays only
// for the pages the slice dirtied (a delta restore).  Only the restore
// calls are timed; each cell is the best of three repetitions.
//
// Part 2 — forked-campaign wall time.  The ablation campaign runs on the
// parallel engine under both modes; verdicts must match exactly, and the
// wall-time ratio shows what COW restores buy an end-to-end sweep.
//
//   bench_snapshot_throughput [scale] [json-path]
//   bench_snapshot_throughput --check
//
// Results go to `json-path` (default BENCH_snapshot.json) for
// EXPERIMENTS.md and CI.  `--check` skips the timing reps and instead
// verifies run-report identity between the modes: interleaved
// restore/run/report cycles per workload, then the coverage campaign under
// {step, superblock} x {COW, full-copy} — exit 1 on any divergence (made
// for the sanitizer CI legs, where timing is meaningless anyway).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaigns.hpp"
#include "campaign/executor.hpp"
#include "campaign/snapshot_cache.hpp"
#include "core/spec_workloads.hpp"

using namespace ptaint;
using namespace ptaint::core;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// One workload's restore-rate measurement for one memory mode.
struct RestoreCell {
  double restores_per_s = 0.0;
  uint64_t dirty_pages = 0;   // pages the inter-restore slice dirtied
  uint64_t mapped_pages = 0;  // snapshot footprint
};

constexpr int kRestores = 200;        // restores per repetition
constexpr uint64_t kSlice = 50'000;   // guest instructions between restores

RestoreCell measure_restores(const MachineSnapshot& snap, bool no_cow,
                             int reps) {
  RestoreCell cell;
  for (int rep = 0; rep < reps; ++rep) {
    MachineConfig cfg;
    cfg.no_cow = no_cow;
    Machine machine(cfg);
    machine.restore(snap);  // first restore is full under either mode
    double restore_s = 0.0;
    for (int i = 0; i < kRestores; ++i) {
      machine.run_for(kSlice);
      cell.dirty_pages = machine.memory().dirty_page_count();
      const auto t0 = Clock::now();
      machine.restore(snap);
      restore_s += seconds_since(t0);
    }
    cell.restores_per_s =
        std::max(cell.restores_per_s, kRestores / restore_s);
  }
  cell.mapped_pages = snap.memory.mapped_pages();
  return cell;
}

/// Fingerprint of a run's observable outcome; COW and full-copy modes must
/// never disagree on it.
std::string report_fingerprint(const RunReport& r) {
  std::ostringstream ss;
  ss << static_cast<int>(r.stop) << "|" << r.exit_status << "|"
     << r.cpu_stats.instructions << "|" << r.tainted_memory_bytes << "|"
     << (r.alert ? r.alert_line() : "") << "|" << r.alert_function;
  return ss.str();
}

/// --check leg 1: interleaved restore/run/report cycles must produce the
/// same report sequence under COW and full-copy memory.
bool check_restore_identity(const SpecWorkload& w,
                            const MachineSnapshot& snap) {
  std::vector<std::string> prints[2];
  for (int mode = 0; mode < 2; ++mode) {
    MachineConfig cfg;
    cfg.no_cow = mode == 1;
    Machine machine(cfg);
    for (int i = 0; i < 6; ++i) {
      machine.restore(snap);
      machine.run_for(kSlice * (1 + i % 3));  // vary the dirtied set
      prints[mode].push_back(report_fingerprint(machine.report()));
    }
  }
  if (prints[0] == prints[1]) return true;
  std::fprintf(stderr, "%s: COW and full-copy runs diverge\n",
               w.name.c_str());
  return false;
}

/// Runs the named campaign on the parallel engine; returns wall seconds.
double run_campaign(const std::string& name, bool no_cow,
                    std::optional<cpu::Engine> engine,
                    std::vector<campaign::JobResult>& out) {
  if (no_cow) {
    ::setenv("PTAINT_NO_COW", "1", 1);
  } else {
    ::unsetenv("PTAINT_NO_COW");
  }
  campaign::SnapshotCache cache;
  campaign::Executor::Config config;
  config.workers = 4;
  campaign::Executor executor(config);
  const std::vector<campaign::Job> jobs =
      campaign::make_jobs(name, cache, /*spec_scale=*/1, /*elide=*/false,
                          engine);
  const auto t0 = Clock::now();
  out = executor.run(jobs);
  const double s = seconds_since(t0);
  ::unsetenv("PTAINT_NO_COW");
  return s;
}

int run_check() {
  ::unsetenv("PTAINT_NO_COW");
  bool ok = true;
  for (const auto& w : make_spec_workloads(1)) {
    const auto machine = prepare_spec_workload(w, {});
    const MachineSnapshot snap = machine->snapshot();
    ok = check_restore_identity(w, snap) && ok;
  }
  // Coverage campaign under every engine x memory-mode combination; all
  // four verdict vectors must agree with the first.
  std::vector<campaign::JobResult> reference;
  run_campaign("coverage", /*no_cow=*/false, cpu::Engine::kStep, reference);
  for (const cpu::Engine engine :
       {cpu::Engine::kStep, cpu::Engine::kSuperblock}) {
    for (const bool no_cow : {false, true}) {
      std::vector<campaign::JobResult> results;
      run_campaign("coverage", no_cow, engine, results);
      const std::vector<std::string> diffs =
          campaign::diff_verdicts(results, reference);
      if (!diffs.empty()) {
        std::fprintf(stderr, "coverage (%s, %s) diverges:\n",
                     engine == cpu::Engine::kStep ? "step" : "superblock",
                     no_cow ? "full-copy" : "cow");
        for (const std::string& d : diffs) {
          std::fprintf(stderr, "  %s\n", d.c_str());
        }
        ok = false;
      }
    }
  }
  std::printf("check: COW and full-copy memory are observably identical: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--check") return run_check();

  const int scale = argc > 1 ? std::atoi(argv[1]) : 1;
  const std::string json_path = argc > 2 ? argv[2] : "BENCH_snapshot.json";
  constexpr int kReps = 3;
  ::unsetenv("PTAINT_NO_COW");

  std::printf(
      "== Snapshot restore throughput: COW delta vs full copy (scale %d) "
      "==\n\n",
      scale);
  std::printf("%-8s %7s %7s %14s %14s %8s\n", "program", "pages", "dirty",
              "full rest/s", "cow rest/s", "speedup");

  std::string json = "{\n  \"scale\": " + std::to_string(scale) +
                     ",\n  \"workloads\": [\n";
  double geomean = 1.0;
  int rows = 0;

  for (const auto& w : make_spec_workloads(scale)) {
    const auto machine = prepare_spec_workload(w, {});
    const MachineSnapshot snap = machine->snapshot();
    const RestoreCell full = measure_restores(snap, /*no_cow=*/true, kReps);
    const RestoreCell cow = measure_restores(snap, /*no_cow=*/false, kReps);
    const double speedup =
        full.restores_per_s > 0 ? cow.restores_per_s / full.restores_per_s
                                : 0.0;
    geomean *= speedup;
    ++rows;
    std::printf("%-8s %7llu %7llu %14.0f %14.0f %7.2fx\n", w.name.c_str(),
                static_cast<unsigned long long>(cow.mapped_pages),
                static_cast<unsigned long long>(cow.dirty_pages),
                full.restores_per_s, cow.restores_per_s, speedup);

    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"mapped_pages\": %llu, "
                  "\"dirty_pages\": %llu, \"full_restores_per_s\": %.0f, "
                  "\"cow_restores_per_s\": %.0f, \"speedup\": %.3f},\n",
                  w.name.c_str(),
                  static_cast<unsigned long long>(cow.mapped_pages),
                  static_cast<unsigned long long>(cow.dirty_pages),
                  full.restores_per_s, cow.restores_per_s, speedup);
    json += buf;
  }

  const double gm = rows > 0 ? std::pow(geomean, 1.0 / rows) : 0.0;
  std::printf("\ngeomean restore speedup: %.2fx\n", gm);
  if (json.size() >= 2 && json[json.size() - 2] == ',') {
    json.erase(json.size() - 2, 1);  // trailing comma
  }
  json += "  ],\n  \"geomean_restore_speedup\": " + std::to_string(gm);

  // Part 2: the ablation campaign end to end, both modes, verdicts diffed.
  std::vector<campaign::JobResult> cow_results, full_results;
  double cow_s = 1e300, full_s = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    cow_s = std::min(cow_s, run_campaign("ablation", false, {}, cow_results));
    full_s =
        std::min(full_s, run_campaign("ablation", true, {}, full_results));
  }
  const std::vector<std::string> diffs =
      campaign::diff_verdicts(cow_results, full_results);
  if (!diffs.empty()) {
    std::fprintf(stderr, "ablation verdicts differ between COW and "
                         "full-copy memory:\n");
    for (const std::string& d : diffs) {
      std::fprintf(stderr, "  %s\n", d.c_str());
    }
    return 1;
  }
  const double campaign_speedup = cow_s > 0 ? full_s / cow_s : 0.0;
  std::printf("ablation campaign: full %.2fs vs cow %.2fs (%.2fx), "
              "%zu verdicts identical\n",
              full_s, cow_s, campaign_speedup, cow_results.size());

  char buf[256];
  std::snprintf(buf, sizeof(buf),
                ",\n  \"campaign\": {\"name\": \"ablation\", "
                "\"full_s\": %.3f, \"cow_s\": %.3f, \"speedup\": %.3f}\n}\n",
                full_s, cow_s, campaign_speedup);
  json += buf;
  std::ofstream out(json_path, std::ios::binary);
  out << json;
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
