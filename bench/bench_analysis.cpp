// Incremental static-analysis performance (DESIGN.md §14).
//
// Exercises the summary cache (analysis/summary_cache.hpp) over the six
// SPEC surrogates, the largest static surfaces in the repo:
//
//   * cold    — first analysis of each program (CFG recovery + gen-1 +
//               VSA fixpoint + gen-2 union), jobs = 1;
//   * exact   — a second lookup of the identical program: pure content-hash
//               hit, no analysis runs;
//   * warm    — one function is mutated (two adjacent independent
//               register-only instructions swapped: the content hash
//               changes, the abstract fixpoint does not) and the mutated
//               program is re-analyzed incrementally — only the dirty
//               function and its transitive callers re-iterate, then the
//               warm result is verified identical to a cold run;
//   * parallel — cold VSA fixpoint on a thread pool (SCC condensation
//               schedule) vs. single-threaded, byte-identical results.
//
//   bench_analysis [json-path]       timing run (default BENCH_analysis.json)
//   bench_analysis --check           identity run for the sanitizer legs:
//                                    warm == cold on every mutated app
//                                    (bitmaps, verdicts, witnesses, leak
//                                    sites) and parallel == serial; timing
//                                    skipped; exit 1 on any divergence
//
// The timing run gates the headline claim: warm single-function-mutation
// re-analysis must be >= 10x faster than a cold whole-program analysis on
// the largest surrogate (exit 1 otherwise).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/summary_cache.hpp"
#include "asmgen/assembler.hpp"
#include "core/spec_workloads.hpp"
#include "guest/runtime.hpp"
#include "isa/isa.hpp"

using namespace ptaint;
using namespace ptaint::analysis;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Register-only ALU instruction: defines one register, reads only
/// registers (no memory, no control flow, no side effects).
bool alu_reg_only(const isa::Instruction& in, uint8_t& def,
                  std::vector<uint8_t>& uses) {
  using isa::Op;
  uses.clear();
  switch (in.op) {
    case Op::kSll:
    case Op::kSrl:
    case Op::kSra:
      def = in.rd;
      uses = {in.rt};
      return true;
    case Op::kSllv:
    case Op::kSrlv:
    case Op::kSrav:
    case Op::kAdd:
    case Op::kAddu:
    case Op::kSub:
    case Op::kSubu:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kNor:
    case Op::kSlt:
    case Op::kSltu:
      def = in.rd;
      uses = {in.rs, in.rt};
      return true;
    case Op::kAddi:
    case Op::kAddiu:
    case Op::kSlti:
    case Op::kSltiu:
    case Op::kAndi:
    case Op::kOri:
    case Op::kXori:
      def = in.rt;
      uses = {in.rs};
      return true;
    case Op::kLui:
      def = in.rt;
      return true;
    default:
      return false;
  }
}

/// Finds an abstractly-invisible swap site: two adjacent instructions in
/// one basic block that commute exactly (independent register-only ALU
/// ops), so exchanging them changes the content hash of exactly one
/// function while the converged abstract states — and therefore every
/// bitmap, verdict and witness — stay identical.  Prefers a leaf function
/// (longest invalidation chain through the callers).  Returns the text
/// index of the first instruction of the pair.
std::optional<size_t> find_invisible_swap(const Cfg& cfg) {
  std::optional<size_t> any;
  for (const BasicBlock& bb : cfg.blocks()) {
    for (uint32_t pc = bb.begin; pc + 8 <= bb.end; pc += 4) {
      const size_t i = cfg.index_of(pc);
      const isa::Instruction& a = cfg.instructions()[i];
      const isa::Instruction& b = cfg.instructions()[i + 1];
      uint8_t def_a = 0, def_b = 0;
      std::vector<uint8_t> uses_a, uses_b;
      if (!alu_reg_only(a, def_a, uses_a)) continue;
      if (!alu_reg_only(b, def_b, uses_b)) continue;
      if (def_a == 0 || def_b == 0 || def_a == def_b) continue;
      auto reads = [](const std::vector<uint8_t>& uses, uint8_t r) {
        return std::find(uses.begin(), uses.end(), r) != uses.end();
      };
      if (reads(uses_b, def_a) || reads(uses_a, def_b)) continue;
      if (cfg.program().text[i] == cfg.program().text[i + 1]) continue;
      if (bb.function >= 0 && cfg.functions()[bb.function].callees.empty()) {
        return i;  // leaf function: best case for the invalidation story
      }
      if (!any) any = i;
    }
  }
  return any;
}

bool same_witnesses(const std::vector<Witness>& a,
                    const std::vector<Witness>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].site_pc != b[i].site_pc || a[i].complete != b[i].complete ||
        a[i].steps.size() != b[i].steps.size()) {
      return false;
    }
    for (size_t j = 0; j < a[i].steps.size(); ++j) {
      const WitnessStep& x = a[i].steps[j];
      const WitnessStep& y = b[i].steps[j];
      if (x.pc != y.pc || x.event != y.event || x.loc != y.loc) return false;
    }
  }
  return true;
}

bool same_leak_sites(const std::vector<LeakSite>& a,
                     const std::vector<LeakSite>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].pc != b[i].pc || a[i].reachable != b[i].reachable ||
        a[i].may_planes != b[i].may_planes ||
        a[i].annotated != b[i].annotated) {
      return false;
    }
  }
  return true;
}

/// Full identity between two analysis result sets: elision and leak
/// bitmaps, per-site verdict renderings, witnesses, leak sites.
bool identical(const char* what, const Cfg& cfg, const CachedAnalysis& x,
               const CachedAnalysis& y) {
  bool ok = true;
  auto fail = [&](const char* field) {
    std::fprintf(stderr, "FAIL %s: %s differs\n", what, field);
    ok = false;
  };
  if (x.gen2.elision != y.gen2.elision) fail("gen2 elision bitmap");
  if (x.gen2.leak_elision != y.gen2.leak_elision) fail("leak elision bitmap");
  if (x.g1.elision != y.g1.elision) fail("gen1 elision bitmap");
  if (x.g1.report(cfg) != y.g1.report(cfg)) fail("gen1 site report");
  if (x.g2.report(cfg) != y.g2.report(cfg)) fail("gen2 site report");
  if (x.g2.leak_report(cfg) != y.g2.leak_report(cfg)) fail("leak report");
  if (!same_witnesses(x.g2.witnesses, y.g2.witnesses)) fail("witnesses");
  if (!same_witnesses(x.g2.leak_witnesses, y.g2.leak_witnesses)) {
    fail("leak witnesses");
  }
  if (!same_leak_sites(x.g2.leak_sites, y.g2.leak_sites)) fail("leak sites");
  if (x.block_leaders != y.block_leaders) fail("block leaders");
  return ok;
}

struct AppSurface {
  std::string name;
  asmgen::Program program;
  asmgen::Program mutated;  // one invisible swap applied (if found)
  bool has_mutation = false;
  size_t functions = 0;
};

std::vector<AppSurface> build_surfaces() {
  std::vector<AppSurface> out;
  for (core::SpecWorkload& w : core::make_spec_workloads(1)) {
    AppSurface s;
    s.name = w.name;
    s.program = asmgen::assemble(guest::link_with_runtime(std::move(w.app)));
    const Cfg cfg(s.program);
    s.functions = cfg.functions().size();
    if (std::optional<size_t> i = find_invisible_swap(cfg)) {
      s.mutated = s.program;
      std::swap(s.mutated.text[*i], s.mutated.text[*i + 1]);
      s.has_mutation = true;
    }
    out.push_back(std::move(s));
  }
  return out;
}

struct AppRow {
  std::string name;
  size_t text_words = 0;
  size_t functions = 0;
  double cold_ms = 0.0;
  double exact_us = 0.0;
  double warm_ms = 0.0;
  double speedup = 0.0;
  uint64_t dirty_fns = 0;
  bool warm_path = false;
};

constexpr int kReps = 5;

int run_check(std::vector<AppSurface>& apps) {
  VsaOptions opts;
  opts.witnesses = true;
  const cpu::TaintPolicy policy;
  const int jobs =
      std::max(2u, std::thread::hardware_concurrency() ? std::thread::hardware_concurrency() : 2u);
  int rc = 0;
  for (AppSurface& app : apps) {
    // Parallel cold vs. serial cold on the pristine program.
    SummaryCache serial;
    serial.set_jobs(1);
    const auto base = serial.analyze(app.program, policy, opts);
    {
      SummaryCache par;
      par.set_jobs(jobs);
      const auto p = par.analyze(app.program, policy, opts);
      const Cfg cfg(app.program);
      const std::string what = app.name + " parallel-vs-serial";
      if (!identical(what.c_str(), cfg, *base, *p)) rc = 1;
    }
    if (!app.has_mutation) {
      std::fprintf(stderr, "%s: no invisible-swap site, mutation leg skipped\n",
                   app.name.c_str());
      continue;
    }
    // Warm re-analysis of the mutation vs. a from-scratch cold run.
    const auto warm = serial.analyze(app.mutated, policy, opts);
    const bool warm_path = serial.stats().warm_hits > 0;
    SummaryCache fresh;
    fresh.set_jobs(1);
    const auto cold = fresh.analyze(app.mutated, policy, opts);
    const Cfg cfg(app.mutated);
    const std::string what = app.name + " warm-vs-cold";
    if (!identical(what.c_str(), cfg, *cold, *warm)) rc = 1;
    std::printf("%-8s warm==cold ok (%s, %llu dirty fns of %zu)\n",
                app.name.c_str(), warm_path ? "warm path" : "cold fallback",
                static_cast<unsigned long long>(serial.stats().invalidated_fns),
                app.functions);
    if (!warm_path) {
      std::fprintf(stderr, "FAIL %s: invisible swap fell back to cold\n",
                   app.name.c_str());
      rc = 1;
    }
  }
  std::printf("%s\n", rc == 0 ? "bench_analysis --check: all identical"
                              : "bench_analysis --check: DIVERGENCE");
  return rc;
}

int run_timing(std::vector<AppSurface>& apps, const std::string& json_path) {
  const cpu::TaintPolicy policy;
  const VsaOptions opts;  // Machine-shaped lookups: no witnesses
  std::vector<AppRow> rows;
  for (AppSurface& app : apps) {
    AppRow row;
    row.name = app.name;
    row.text_words = app.program.text.size();
    row.functions = app.functions;
    row.cold_ms = 1e9;
    row.exact_us = 1e9;
    row.warm_ms = 1e9;
    for (int rep = 0; rep < kReps; ++rep) {
      SummaryCache cache;
      cache.set_jobs(1);
      auto t0 = Clock::now();
      (void)cache.analyze(app.program, policy, opts);
      row.cold_ms = std::min(row.cold_ms, ms_since(t0));
      t0 = Clock::now();
      (void)cache.analyze(app.program, policy, opts);
      row.exact_us = std::min(row.exact_us, ms_since(t0) * 1000.0);
      if (!app.has_mutation) continue;
      t0 = Clock::now();
      (void)cache.analyze(app.mutated, policy, opts);
      row.warm_ms = std::min(row.warm_ms, ms_since(t0));
      row.warm_path = cache.stats().warm_hits > 0;
      row.dirty_fns = cache.stats().invalidated_fns;
    }
    if (app.has_mutation) row.speedup = row.cold_ms / row.warm_ms;
    std::printf(
        "%-8s %6zu words %3zu fns  cold %8.2fms  exact %7.1fus  "
        "warm %7.2fms (%5.1fx, %llu dirty%s)\n",
        row.name.c_str(), row.text_words, row.functions, row.cold_ms,
        row.exact_us, app.has_mutation ? row.warm_ms : 0.0, row.speedup,
        static_cast<unsigned long long>(row.dirty_fns),
        row.warm_path ? "" : ", COLD FALLBACK");
    rows.push_back(row);
  }

  // Parallel speedup on the largest surrogate.
  size_t largest = 0;
  for (size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].text_words > rows[largest].text_words) largest = i;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  const int jobs = static_cast<int>(std::max(2u, hw ? hw : 2u));
  double par_ms = 1e9;
  for (int rep = 0; rep < kReps; ++rep) {
    SummaryCache cache;
    cache.set_jobs(jobs);
    const auto t0 = Clock::now();
    (void)cache.analyze(apps[largest].program, policy, opts);
    par_ms = std::min(par_ms, ms_since(t0));
  }
  const double par_speedup = rows[largest].cold_ms / par_ms;
  std::printf("parallel (%s, %d jobs): %8.2fms vs %8.2fms serial (%.2fx)\n",
              rows[largest].name.c_str(), jobs, par_ms, rows[largest].cold_ms,
              par_speedup);

  std::ofstream out(json_path);
  out << "{\n  \"bench\": \"analysis_cache\",\n  \"apps\": [\n";
  char buf[256];
  for (size_t i = 0; i < rows.size(); ++i) {
    const AppRow& r = rows[i];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"text_words\": %zu, "
                  "\"functions\": %zu, \"cold_ms\": %.3f, "
                  "\"exact_hit_us\": %.1f, \"warm_ms\": %.3f, "
                  "\"warm_speedup\": %.1f, \"dirty_fns\": %llu, "
                  "\"warm_path\": %s}%s\n",
                  r.name.c_str(), r.text_words, r.functions, r.cold_ms,
                  r.exact_us, r.warm_ms, r.speedup,
                  static_cast<unsigned long long>(r.dirty_fns),
                  r.warm_path ? "true" : "false",
                  i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n";
  std::snprintf(buf, sizeof buf,
                "  \"largest\": \"%s\",\n  \"parallel\": {\"jobs\": %d, "
                "\"serial_ms\": %.3f, \"parallel_ms\": %.3f, "
                "\"speedup\": %.2f}\n}\n",
                rows[largest].name.c_str(), jobs, rows[largest].cold_ms,
                par_ms, par_speedup);
  out << buf;
  out.close();
  std::printf("wrote %s\n", json_path.c_str());

  // Headline gate: warm mutation re-analysis >= 10x cold on the largest
  // surrogate (generous against CI noise: warm touches one call chain,
  // cold iterates the whole program).
  const AppRow& big = rows[largest];
  if (!big.warm_path || big.speedup < 10.0) {
    std::fprintf(stderr,
                 "FAIL: largest surrogate %s warm speedup %.1fx (< 10x)%s\n",
                 big.name.c_str(), big.speedup,
                 big.warm_path ? "" : ", cold fallback");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  std::string json_path = "BENCH_analysis.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      check = true;
    } else {
      json_path = arg;
    }
  }
  std::vector<AppSurface> apps = build_surfaces();
  return check ? run_check(apps) : run_timing(apps, json_path);
}
