// Section 5.1.2 headline result — the security-coverage matrix.
//
// Runs every attack of the corpus under the three detection modes and the
// benign twin under the full policy:
//   * unprotected:        every attack lands (or crashes the victim);
//   * control-data-only:  only the control-data attack is caught — all
//                         non-control-data attacks still succeed;
//   * pointer-taintedness: every pointer-dereference attack is caught;
//   * benign runs:        zero false positives.
#include <cstdio>

#include "core/coverage.hpp"

using namespace ptaint::core;

int main() {
  std::printf("== Security coverage: pointer taintedness vs control-data "
              "baselines ==\n\n");
  CoverageMatrix matrix = run_coverage_matrix();
  std::printf("%s\n", matrix.to_table().c_str());

  std::printf("alert details under the paper policy:\n");
  for (const auto& row : matrix.rows) {
    const auto& cell = row.cell(ptaint::cpu::DetectionMode::kPointerTaint);
    if (cell.outcome == Outcome::kDetected) {
      std::printf("  %-28s %s\n", row.name.c_str(), cell.detail.c_str());
    }
  }

  const bool shape_holds =
      matrix.detected_count(ptaint::cpu::DetectionMode::kPointerTaint) ==
          matrix.expected_detectable() &&
      matrix.detected_count(ptaint::cpu::DetectionMode::kControlDataOnly) <
          matrix.expected_detectable() &&
      matrix.false_positives() == 0;
  std::printf("\npaper shape %s: pointer-taintedness detects all attacks "
              "(control and non-control data); the control-data baseline "
              "misses the non-control-data ones; no false positives.\n",
              shape_holds ? "REPRODUCED" : "NOT reproduced");
  return shape_holds ? 0 : 1;
}
