// Figure 3 / Section 5.4 — architectural overhead of the taint extension.
//
// Three claims are checked quantitatively:
//   1. cycle counts are IDENTICAL with and without the taint extension
//      (the tracking logic is off the critical path and adds no stalls);
//   2. the area overhead is the taint storage: 1 bit per byte = 12.5% of
//      the data arrays (registers, latches, caches);
//   3. per-stage combinational delays show the taint merge/detector logic
//      is strictly faster than the stages it runs beside.
// A google-benchmark section measures the simulator-side cost of the
// timing model itself.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/machine.hpp"
#include "core/spec_workloads.hpp"
#include "guest/runtime.hpp"

using namespace ptaint;
using namespace ptaint::core;

namespace {

void print_report() {
  std::printf("== Figure 3 / Section 5.4: architectural overhead ==\n\n");

  MachineConfig with_cfg;
  with_cfg.pipeline_model = true;
  Machine with_taint(with_cfg);
  MachineConfig without_cfg;
  without_cfg.pipeline_model = true;
  without_cfg.pipeline.taint_tracking = false;
  without_cfg.policy.mode = cpu::DetectionMode::kOff;
  Machine without_taint(without_cfg);

  auto w = make_spec_workloads(1).at(0);
  for (Machine* m : {&with_taint, &without_taint}) {
    m->load_sources(guest::link_with_runtime(w.app));
    m->os().vfs().install("/input", w.input);
    m->run();
  }
  const auto a = with_taint.report().pipeline_stats.value();
  const auto b = without_taint.report().pipeline_stats.value();

  std::printf("cycle counts over the BZIP2 surrogate:\n");
  std::printf("  with taint extension:    %llu cycles, IPC %.3f\n",
              static_cast<unsigned long long>(a.cycles), a.ipc());
  std::printf("  without taint extension: %llu cycles, IPC %.3f\n",
              static_cast<unsigned long long>(b.cycles), b.ipc());
  std::printf("  performance overhead: %.2f%%  (paper: taint tracking is "
              "off the critical path -> 0%%)\n\n",
              b.cycles == 0
                  ? 0.0
                  : 100.0 * (static_cast<double>(a.cycles) - b.cycles) /
                        b.cycles);

  const auto* pipe = with_taint.pipeline();
  std::printf("storage (area) overhead:\n");
  std::printf("  baseline storage bits: %llu\n",
              static_cast<unsigned long long>(pipe->baseline_storage_bits()));
  std::printf("  taint extension bits:  %llu (%.2f%%; 1 bit per byte = "
              "12.5%% of data arrays)\n\n",
              static_cast<unsigned long long>(pipe->taint_storage_bits()),
              100.0 * pipe->taint_storage_bits() /
                  pipe->baseline_storage_bits());

  const auto d = cpu::Pipeline::stage_delays();
  std::printf("combinational delays (ps):\n");
  std::printf("  ALU stage %d vs taint merge %d; retirement check %d vs "
              "detector OR %d\n",
              d.alu_ps, d.taint_merge_ps, d.retire_check_ps, d.detector_ps);
  std::printf("  taint logic on critical path: %s\n\n",
              d.taint_on_critical_path() ? "YES (!)" : "no");

  // Branch prediction: static not-taken vs 2-bit counters.
  std::printf("branch prediction (BZIP2 surrogate):\n");
  for (auto pred : {cpu::PipelineConfig::BranchPredictor::kStaticNotTaken,
                    cpu::PipelineConfig::BranchPredictor::kTwoBit}) {
    MachineConfig cfg;
    cfg.pipeline_model = true;
    cfg.pipeline.predictor = pred;
    Machine m(cfg);
    m.load_sources(guest::link_with_runtime(w.app));
    m.os().vfs().install("/input", w.input);
    const auto rep = m.run();
    const auto& s = *rep.pipeline_stats;
    std::printf("  %-18s mispredict %6.2f%%  IPC %.3f\n",
                pred == cpu::PipelineConfig::BranchPredictor::kTwoBit
                    ? "2-bit counters"
                    : "static not-taken",
                100.0 * s.misprediction_rate(), s.ipc());
  }
  std::printf("\n");

  // D-cache sensitivity sweep: the timing model reacting to capacity.
  std::printf("d-cache capacity sweep (BZIP2 surrogate):\n");
  std::printf("  %8s %12s %14s %10s\n", "size", "accesses", "miss rate",
              "IPC");
  for (uint32_t kb : {4u, 16u, 64u}) {
    MachineConfig cfg;
    cfg.pipeline_model = true;
    cfg.pipeline.dcache.size_bytes = kb * 1024;
    Machine m(cfg);
    m.load_sources(guest::link_with_runtime(w.app));
    m.os().vfs().install("/input", w.input);
    m.run();
    const auto& dc = m.pipeline()->dcache().stats();
    std::printf("  %6uKB %12llu %13.3f%% %10.3f\n", kb,
                static_cast<unsigned long long>(dc.accesses),
                100.0 * dc.miss_rate(),
                m.report().pipeline_stats->ipc());
  }
  std::printf("\n");
}

void BM_PipelineModelOverhead(benchmark::State& state) {
  const bool timing_on = state.range(0) != 0;
  for (auto _ : state) {
    MachineConfig cfg;
    cfg.pipeline_model = timing_on;
    Machine m(cfg);
    m.load_source(R"(
      .text
      _start:
        li $t0, 0
        li $t1, 20000
      loop:
        addu $t2, $t2, $t0
        addiu $t0, $t0, 1
        bne $t0, $t1, loop
        li $v0, 1
        li $a0, 0
        syscall
    )");
    benchmark::DoNotOptimize(m.run().cpu_stats.instructions);
  }
}
BENCHMARK(BM_PipelineModelOverhead)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
