// Detection latency (beyond the paper): how many instructions execute
// between the first byte of external input entering the process and the
// security exception.  The paper argues the process is stopped before the
// corruption can be weaponized; this quantifies the window per attack.
#include <cstdio>

#include "core/machine.hpp"
#include "guest/apps/apps.hpp"
#include "guest/runtime.hpp"

using namespace ptaint;
using namespace ptaint::core;

namespace {

// Drives the machine one instruction at a time, recording the retirement
// index of the first tainted input byte and of the alert.
void measure_stepped(const char* name, const asmgen::Source& app,
                     const std::string& stdin_data,
                     const std::vector<std::string>& session) {
  Machine m;
  m.load_sources(guest::link_with_runtime(app));
  if (!stdin_data.empty()) m.os().set_stdin(stdin_data);
  if (!session.empty()) m.os().net().add_session(session);

  uint64_t first_input = 0;
  while (m.cpu().stop_reason() == cpu::StopReason::kRunning) {
    m.run_for(1);
    if (first_input == 0 && m.os().stats().input_bytes_tainted > 0) {
      first_input = m.cpu().stats().instructions;
    }
  }
  const auto rep = m.report();
  if (rep.detected()) {
    std::printf("%-28s %10llu %14llu %16llu\n", name,
                static_cast<unsigned long long>(first_input),
                static_cast<unsigned long long>(rep.cpu_stats.instructions),
                static_cast<unsigned long long>(rep.cpu_stats.instructions -
                                                first_input));
  } else {
    std::printf("%-28s NOT DETECTED\n", name);
  }
}

}  // namespace

int main() {
  std::printf("== Detection latency: instructions from first input byte to "
              "the alert ==\n\n");
  std::printf("%-28s %10s %14s %16s\n", "attack", "input at", "alert at",
              "exposure window");

  measure_stepped("exp1-stack-smash", guest::apps::exp1_stack(),
                  std::string(24, 'a'), {});
  measure_stepped("exp2-heap-corruption", guest::apps::exp2_heap(),
                  std::string(12, 'a') + "bbbb" + "cccc", {});
  measure_stepped("exp3-format-string", guest::apps::exp3_format(), "",
                  {"abcd%x%x%x%n"});
  {
    // WU-FTPD with the Table 2 command.
    Machine probe;
    probe.load_sources(guest::link_with_runtime(guest::apps::wu_ftpd()));
    const uint32_t uid = probe.program().symbols.at("login_uid");
    std::string cmd = "site exec ";
    for (int i = 0; i < 4; ++i) cmd += static_cast<char>(uid >> (8 * i));
    cmd += "%x%x%x%x%x%x%n";
    measure_stepped("wu-ftpd-site-exec", guest::apps::wu_ftpd(), "",
                    {"user user1\r\n", "pass xxxxxxx\r\n", cmd + "\r\n"});
  }

  std::printf(
      "\nreading: the exposure window is the library code between the\n"
      "receiving syscall and the first tainted dereference (scanf/recv\n"
      "parsing, heap bookkeeping, vfprintf's walk) — thousands of\n"
      "instructions, none of which could weaponize the corruption before\n"
      "the retirement-stage exception fired.\n");
  return 0;
}
