// Detection latency (beyond the paper): how many instructions execute
// between the first byte of external input entering the process and the
// security exception.  The paper argues the process is stopped before the
// corruption can be weaponized; this quantifies the window per attack.
//
// Two directions are measured: the data-taint attacks (tainted pointer
// dereference stops the overwrite itself) and the address-leak attacks
// (leak_detection stops the *disclosure* write, before the attacker has the
// address needed to aim the later overwrite).
#include <cstdio>

#include "core/attack.hpp"
#include "core/machine.hpp"
#include "guest/apps/apps.hpp"
#include "guest/runtime.hpp"

using namespace ptaint;
using namespace ptaint::core;

namespace {

// Drives the machine one instruction at a time, recording the retirement
// index of the first tainted input byte and of the alert.
void measure_stepped(const char* name, const asmgen::Source& app,
                     const std::string& stdin_data,
                     const std::vector<std::string>& session) {
  Machine m;
  m.load_sources(guest::link_with_runtime(app));
  if (!stdin_data.empty()) m.os().set_stdin(stdin_data);
  if (!session.empty()) m.os().net().add_session(session);

  uint64_t first_input = 0;
  while (m.cpu().stop_reason() == cpu::StopReason::kRunning) {
    m.run_for(1);
    if (first_input == 0 && m.os().stats().input_bytes_tainted > 0) {
      first_input = m.cpu().stats().instructions;
    }
  }
  const auto rep = m.report();
  if (rep.detected()) {
    std::printf("%-28s %10llu %14llu %16llu\n", name,
                static_cast<unsigned long long>(first_input),
                static_cast<unsigned long long>(rep.cpu_stats.instructions),
                static_cast<unsigned long long>(rep.cpu_stats.instructions -
                                                first_input));
  } else {
    std::printf("%-28s NOT DETECTED\n", name);
  }
}

// Same stepped measurement for a corpus scenario armed with its real attack
// input, under the address-leak policy: the alert fires at the leaking
// kernel write, i.e. before the disclosed address ever reaches the wire.
void measure_leak_scenario(const char* name, AttackId id) {
  cpu::TaintPolicy leak;
  leak.leak_detection = true;
  auto machine = make_scenario(id)->prepare_attack(leak);
  Machine& m = *machine;

  uint64_t first_input = 0;
  while (m.cpu().stop_reason() == cpu::StopReason::kRunning) {
    m.run_for(1);
    if (first_input == 0 && m.os().stats().input_bytes_tainted > 0) {
      first_input = m.cpu().stats().instructions;
    }
  }
  const auto rep = m.report();
  if (rep.detected()) {
    std::printf("%-28s %10llu %14llu %16llu\n", name,
                static_cast<unsigned long long>(first_input),
                static_cast<unsigned long long>(rep.cpu_stats.instructions),
                static_cast<unsigned long long>(rep.cpu_stats.instructions -
                                                first_input));
  } else {
    std::printf("%-28s NOT DETECTED\n", name);
  }
}

}  // namespace

int main() {
  std::printf("== Detection latency: instructions from first input byte to "
              "the alert ==\n\n");
  std::printf("%-28s %10s %14s %16s\n", "attack", "input at", "alert at",
              "exposure window");

  measure_stepped("exp1-stack-smash", guest::apps::exp1_stack(),
                  std::string(24, 'a'), {});
  measure_stepped("exp2-heap-corruption", guest::apps::exp2_heap(),
                  std::string(12, 'a') + "bbbb" + "cccc", {});
  measure_stepped("exp3-format-string", guest::apps::exp3_format(), "",
                  {"abcd%x%x%x%n"});
  {
    // WU-FTPD with the Table 2 command.
    Machine probe;
    probe.load_sources(guest::link_with_runtime(guest::apps::wu_ftpd()));
    const uint32_t uid = probe.program().symbols.at("login_uid");
    std::string cmd = "site exec ";
    for (int i = 0; i < 4; ++i) cmd += static_cast<char>(uid >> (8 * i));
    cmd += "%x%x%x%x%x%x%n";
    measure_stepped("wu-ftpd-site-exec", guest::apps::wu_ftpd(), "",
                    {"user user1\r\n", "pass xxxxxxx\r\n", cmd + "\r\n"});
  }

  std::printf("\n-- address-leak direction (leak_detection policy) --\n");
  measure_leak_scenario("leak-telemetry-peek", AttackId::kLeakTelemetry);
  measure_leak_scenario("leak-session-token", AttackId::kLeakSession);
  measure_leak_scenario("leak-banner-format", AttackId::kLeakBanner);

  std::printf(
      "\nreading: for the data-taint rows the exposure window is the\n"
      "library code between the receiving syscall and the first tainted\n"
      "dereference (scanf/recv parsing, heap bookkeeping, vfprintf's walk)\n"
      "— thousands of instructions, none of which could weaponize the\n"
      "corruption before the retirement-stage exception fired.  For the\n"
      "leak rows the alert lands at the disclosing SYS_WRITE/SYS_SEND, so\n"
      "the window ends before the attacker learns the address the later\n"
      "overwrite needs — the leak->overwrite chain is cut at its first\n"
      "link.\n");
  return 0;
}
