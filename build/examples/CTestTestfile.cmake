# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  PASS_REGULAR_EXPRESSION "security alert" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ftp_attack_demo "/root/repo/build/examples/ftp_attack_demo")
set_tests_properties(example_ftp_attack_demo PROPERTIES  PASS_REGULAR_EXPRESSION "sw \\\$21,0\\(\\\$3\\).*0x1002bc20" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_httpd_attack_demo "/root/repo/build/examples/httpd_attack_demo")
set_tests_properties(example_httpd_attack_demo PROPERTIES  PASS_REGULAR_EXPRESSION "pointer-taintedness: DETECTED" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_taint_visualizer "/root/repo/build/examples/taint_visualizer")
set_tests_properties(example_taint_visualizer PROPERTIES  PASS_REGULAR_EXPRESSION "####" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_profile_demo "/root/repo/build/examples/profile_demo")
set_tests_properties(example_profile_demo PROPERTIES  PASS_REGULAR_EXPRESSION "bzip2_s checksum=" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
