file(REMOVE_RECURSE
  "CMakeFiles/taint_visualizer.dir/taint_visualizer.cpp.o"
  "CMakeFiles/taint_visualizer.dir/taint_visualizer.cpp.o.d"
  "taint_visualizer"
  "taint_visualizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taint_visualizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
