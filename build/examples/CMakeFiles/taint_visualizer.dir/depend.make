# Empty dependencies file for taint_visualizer.
# This may be replaced when dependencies are built.
