file(REMOVE_RECURSE
  "CMakeFiles/ftp_attack_demo.dir/ftp_attack_demo.cpp.o"
  "CMakeFiles/ftp_attack_demo.dir/ftp_attack_demo.cpp.o.d"
  "ftp_attack_demo"
  "ftp_attack_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftp_attack_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
