# Empty dependencies file for ftp_attack_demo.
# This may be replaced when dependencies are built.
