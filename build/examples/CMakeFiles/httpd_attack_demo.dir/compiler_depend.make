# Empty compiler generated dependencies file for httpd_attack_demo.
# This may be replaced when dependencies are built.
