file(REMOVE_RECURSE
  "CMakeFiles/httpd_attack_demo.dir/httpd_attack_demo.cpp.o"
  "CMakeFiles/httpd_attack_demo.dir/httpd_attack_demo.cpp.o.d"
  "httpd_attack_demo"
  "httpd_attack_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/httpd_attack_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
