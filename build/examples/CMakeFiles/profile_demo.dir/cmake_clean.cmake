file(REMOVE_RECURSE
  "CMakeFiles/profile_demo.dir/profile_demo.cpp.o"
  "CMakeFiles/profile_demo.dir/profile_demo.cpp.o.d"
  "profile_demo"
  "profile_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
