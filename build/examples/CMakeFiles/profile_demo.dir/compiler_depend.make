# Empty compiler generated dependencies file for profile_demo.
# This may be replaced when dependencies are built.
