file(REMOVE_RECURSE
  "libptaint.a"
)
