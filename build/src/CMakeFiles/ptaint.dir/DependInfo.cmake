
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asmgen/assembler.cpp" "src/CMakeFiles/ptaint.dir/asmgen/assembler.cpp.o" "gcc" "src/CMakeFiles/ptaint.dir/asmgen/assembler.cpp.o.d"
  "/root/repo/src/asmgen/lexer.cpp" "src/CMakeFiles/ptaint.dir/asmgen/lexer.cpp.o" "gcc" "src/CMakeFiles/ptaint.dir/asmgen/lexer.cpp.o.d"
  "/root/repo/src/core/attack.cpp" "src/CMakeFiles/ptaint.dir/core/attack.cpp.o" "gcc" "src/CMakeFiles/ptaint.dir/core/attack.cpp.o.d"
  "/root/repo/src/core/cert_data.cpp" "src/CMakeFiles/ptaint.dir/core/cert_data.cpp.o" "gcc" "src/CMakeFiles/ptaint.dir/core/cert_data.cpp.o.d"
  "/root/repo/src/core/coverage.cpp" "src/CMakeFiles/ptaint.dir/core/coverage.cpp.o" "gcc" "src/CMakeFiles/ptaint.dir/core/coverage.cpp.o.d"
  "/root/repo/src/core/machine.cpp" "src/CMakeFiles/ptaint.dir/core/machine.cpp.o" "gcc" "src/CMakeFiles/ptaint.dir/core/machine.cpp.o.d"
  "/root/repo/src/core/spec_workloads.cpp" "src/CMakeFiles/ptaint.dir/core/spec_workloads.cpp.o" "gcc" "src/CMakeFiles/ptaint.dir/core/spec_workloads.cpp.o.d"
  "/root/repo/src/cpu/cpu.cpp" "src/CMakeFiles/ptaint.dir/cpu/cpu.cpp.o" "gcc" "src/CMakeFiles/ptaint.dir/cpu/cpu.cpp.o.d"
  "/root/repo/src/cpu/pipeline.cpp" "src/CMakeFiles/ptaint.dir/cpu/pipeline.cpp.o" "gcc" "src/CMakeFiles/ptaint.dir/cpu/pipeline.cpp.o.d"
  "/root/repo/src/cpu/taint_unit.cpp" "src/CMakeFiles/ptaint.dir/cpu/taint_unit.cpp.o" "gcc" "src/CMakeFiles/ptaint.dir/cpu/taint_unit.cpp.o.d"
  "/root/repo/src/guest/apps/falseneg.cpp" "src/CMakeFiles/ptaint.dir/guest/apps/falseneg.cpp.o" "gcc" "src/CMakeFiles/ptaint.dir/guest/apps/falseneg.cpp.o.d"
  "/root/repo/src/guest/apps/ftpd.cpp" "src/CMakeFiles/ptaint.dir/guest/apps/ftpd.cpp.o" "gcc" "src/CMakeFiles/ptaint.dir/guest/apps/ftpd.cpp.o.d"
  "/root/repo/src/guest/apps/ghttpd.cpp" "src/CMakeFiles/ptaint.dir/guest/apps/ghttpd.cpp.o" "gcc" "src/CMakeFiles/ptaint.dir/guest/apps/ghttpd.cpp.o.d"
  "/root/repo/src/guest/apps/globd.cpp" "src/CMakeFiles/ptaint.dir/guest/apps/globd.cpp.o" "gcc" "src/CMakeFiles/ptaint.dir/guest/apps/globd.cpp.o.d"
  "/root/repo/src/guest/apps/nullhttpd.cpp" "src/CMakeFiles/ptaint.dir/guest/apps/nullhttpd.cpp.o" "gcc" "src/CMakeFiles/ptaint.dir/guest/apps/nullhttpd.cpp.o.d"
  "/root/repo/src/guest/apps/spec.cpp" "src/CMakeFiles/ptaint.dir/guest/apps/spec.cpp.o" "gcc" "src/CMakeFiles/ptaint.dir/guest/apps/spec.cpp.o.d"
  "/root/repo/src/guest/apps/synthetic.cpp" "src/CMakeFiles/ptaint.dir/guest/apps/synthetic.cpp.o" "gcc" "src/CMakeFiles/ptaint.dir/guest/apps/synthetic.cpp.o.d"
  "/root/repo/src/guest/apps/traceroute.cpp" "src/CMakeFiles/ptaint.dir/guest/apps/traceroute.cpp.o" "gcc" "src/CMakeFiles/ptaint.dir/guest/apps/traceroute.cpp.o.d"
  "/root/repo/src/guest/runtime.cpp" "src/CMakeFiles/ptaint.dir/guest/runtime.cpp.o" "gcc" "src/CMakeFiles/ptaint.dir/guest/runtime.cpp.o.d"
  "/root/repo/src/isa/disasm.cpp" "src/CMakeFiles/ptaint.dir/isa/disasm.cpp.o" "gcc" "src/CMakeFiles/ptaint.dir/isa/disasm.cpp.o.d"
  "/root/repo/src/isa/encoding.cpp" "src/CMakeFiles/ptaint.dir/isa/encoding.cpp.o" "gcc" "src/CMakeFiles/ptaint.dir/isa/encoding.cpp.o.d"
  "/root/repo/src/isa/isa.cpp" "src/CMakeFiles/ptaint.dir/isa/isa.cpp.o" "gcc" "src/CMakeFiles/ptaint.dir/isa/isa.cpp.o.d"
  "/root/repo/src/mem/cache.cpp" "src/CMakeFiles/ptaint.dir/mem/cache.cpp.o" "gcc" "src/CMakeFiles/ptaint.dir/mem/cache.cpp.o.d"
  "/root/repo/src/mem/tainted_memory.cpp" "src/CMakeFiles/ptaint.dir/mem/tainted_memory.cpp.o" "gcc" "src/CMakeFiles/ptaint.dir/mem/tainted_memory.cpp.o.d"
  "/root/repo/src/os/syscalls.cpp" "src/CMakeFiles/ptaint.dir/os/syscalls.cpp.o" "gcc" "src/CMakeFiles/ptaint.dir/os/syscalls.cpp.o.d"
  "/root/repo/src/os/vfs.cpp" "src/CMakeFiles/ptaint.dir/os/vfs.cpp.o" "gcc" "src/CMakeFiles/ptaint.dir/os/vfs.cpp.o.d"
  "/root/repo/src/os/vnet.cpp" "src/CMakeFiles/ptaint.dir/os/vnet.cpp.o" "gcc" "src/CMakeFiles/ptaint.dir/os/vnet.cpp.o.d"
  "/root/repo/src/trace/profiler.cpp" "src/CMakeFiles/ptaint.dir/trace/profiler.cpp.o" "gcc" "src/CMakeFiles/ptaint.dir/trace/profiler.cpp.o.d"
  "/root/repo/src/trace/tracer.cpp" "src/CMakeFiles/ptaint.dir/trace/tracer.cpp.o" "gcc" "src/CMakeFiles/ptaint.dir/trace/tracer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
