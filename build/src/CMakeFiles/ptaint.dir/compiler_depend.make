# Empty compiler generated dependencies file for ptaint.
# This may be replaced when dependencies are built.
