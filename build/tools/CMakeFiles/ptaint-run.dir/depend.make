# Empty dependencies file for ptaint-run.
# This may be replaced when dependencies are built.
