file(REMOVE_RECURSE
  "CMakeFiles/ptaint-run.dir/ptaint_run.cpp.o"
  "CMakeFiles/ptaint-run.dir/ptaint_run.cpp.o.d"
  "ptaint-run"
  "ptaint-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptaint-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
