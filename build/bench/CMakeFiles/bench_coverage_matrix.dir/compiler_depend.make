# Empty compiler generated dependencies file for bench_coverage_matrix.
# This may be replaced when dependencies are built.
