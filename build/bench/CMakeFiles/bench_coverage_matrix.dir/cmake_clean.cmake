file(REMOVE_RECURSE
  "CMakeFiles/bench_coverage_matrix.dir/bench_coverage_matrix.cpp.o"
  "CMakeFiles/bench_coverage_matrix.dir/bench_coverage_matrix.cpp.o.d"
  "bench_coverage_matrix"
  "bench_coverage_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coverage_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
