# Empty dependencies file for bench_baseline_nx.
# This may be replaced when dependencies are built.
