file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_nx.dir/bench_baseline_nx.cpp.o"
  "CMakeFiles/bench_baseline_nx.dir/bench_baseline_nx.cpp.o.d"
  "bench_baseline_nx"
  "bench_baseline_nx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_nx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
