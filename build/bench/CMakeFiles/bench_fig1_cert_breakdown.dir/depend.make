# Empty dependencies file for bench_fig1_cert_breakdown.
# This may be replaced when dependencies are built.
