file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_propagation.dir/bench_table1_propagation.cpp.o"
  "CMakeFiles/bench_table1_propagation.dir/bench_table1_propagation.cpp.o.d"
  "bench_table1_propagation"
  "bench_table1_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
