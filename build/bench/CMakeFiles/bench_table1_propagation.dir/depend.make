# Empty dependencies file for bench_table1_propagation.
# This may be replaced when dependencies are built.
