# Empty dependencies file for bench_ext_annotations.
# This may be replaced when dependencies are built.
