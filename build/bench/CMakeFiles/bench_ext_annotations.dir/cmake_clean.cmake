file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_annotations.dir/bench_ext_annotations.cpp.o"
  "CMakeFiles/bench_ext_annotations.dir/bench_ext_annotations.cpp.o.d"
  "bench_ext_annotations"
  "bench_ext_annotations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_annotations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
