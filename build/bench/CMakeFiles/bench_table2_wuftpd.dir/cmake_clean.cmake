file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_wuftpd.dir/bench_table2_wuftpd.cpp.o"
  "CMakeFiles/bench_table2_wuftpd.dir/bench_table2_wuftpd.cpp.o.d"
  "bench_table2_wuftpd"
  "bench_table2_wuftpd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_wuftpd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
