# Empty dependencies file for bench_table2_wuftpd.
# This may be replaced when dependencies are built.
