# Empty dependencies file for bench_table3_false_positives.
# This may be replaced when dependencies are built.
