file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_synthetic_attacks.dir/bench_fig2_synthetic_attacks.cpp.o"
  "CMakeFiles/bench_fig2_synthetic_attacks.dir/bench_fig2_synthetic_attacks.cpp.o.d"
  "bench_fig2_synthetic_attacks"
  "bench_fig2_synthetic_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_synthetic_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
