# Empty dependencies file for bench_fig2_synthetic_attacks.
# This may be replaced when dependencies are built.
