# Empty compiler generated dependencies file for bench_baseline_aslr.
# This may be replaced when dependencies are built.
