file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_aslr.dir/bench_baseline_aslr.cpp.o"
  "CMakeFiles/bench_baseline_aslr.dir/bench_baseline_aslr.cpp.o.d"
  "bench_baseline_aslr"
  "bench_baseline_aslr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_aslr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
