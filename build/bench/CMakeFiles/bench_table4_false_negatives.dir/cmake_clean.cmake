file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_false_negatives.dir/bench_table4_false_negatives.cpp.o"
  "CMakeFiles/bench_table4_false_negatives.dir/bench_table4_false_negatives.cpp.o.d"
  "bench_table4_false_negatives"
  "bench_table4_false_negatives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_false_negatives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
