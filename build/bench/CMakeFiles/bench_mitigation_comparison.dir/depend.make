# Empty dependencies file for bench_mitigation_comparison.
# This may be replaced when dependencies are built.
