# Empty compiler generated dependencies file for bench_overhead_software.
# This may be replaced when dependencies are built.
