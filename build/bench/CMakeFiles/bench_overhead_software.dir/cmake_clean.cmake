file(REMOVE_RECURSE
  "CMakeFiles/bench_overhead_software.dir/bench_overhead_software.cpp.o"
  "CMakeFiles/bench_overhead_software.dir/bench_overhead_software.cpp.o.d"
  "bench_overhead_software"
  "bench_overhead_software.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overhead_software.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
