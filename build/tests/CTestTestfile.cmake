# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ptaint_tests[1]_include.cmake")
add_test(cli_benign_hello "/root/repo/build/tools/ptaint-run" "--quiet" "/root/repo/tests/cli/hello.s")
set_tests_properties(cli_benign_hello PROPERTIES  PASS_REGULAR_EXPRESSION "hello from the guest" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;31;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_detects_stack_smash "/root/repo/build/tools/ptaint-run" "--stdin" "aaaaaaaaaaaaaaaaaaaaaaaa" "/root/repo/tests/cli/stack_smash.s")
set_tests_properties(cli_detects_stack_smash PROPERTIES  PASS_REGULAR_EXPRESSION "SECURITY ALERT.*jr \\\$31.*0x61616161" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;36;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_policy_off_crashes "/root/repo/build/tools/ptaint-run" "--policy" "off" "--stdin" "aaaaaaaaaaaaaaaaaaaaaaaa" "/root/repo/tests/cli/stack_smash.s")
set_tests_properties(cli_policy_off_crashes PROPERTIES  PASS_REGULAR_EXPRESSION "FAULT" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;43;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_benign_input_is_clean "/root/repo/build/tools/ptaint-run" "--stdin" "hi" "/root/repo/tests/cli/stack_smash.s")
set_tests_properties(cli_benign_input_is_clean PROPERTIES  PASS_REGULAR_EXPRESSION "exit 0" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;49;add_test;/root/repo/tests/CMakeLists.txt;0;")
