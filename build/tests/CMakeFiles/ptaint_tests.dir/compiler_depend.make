# Empty compiler generated dependencies file for ptaint_tests.
# This may be replaced when dependencies are built.
