
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/annotation_test.cpp" "tests/CMakeFiles/ptaint_tests.dir/annotation_test.cpp.o" "gcc" "tests/CMakeFiles/ptaint_tests.dir/annotation_test.cpp.o.d"
  "/root/repo/tests/aslr_test.cpp" "tests/CMakeFiles/ptaint_tests.dir/aslr_test.cpp.o" "gcc" "tests/CMakeFiles/ptaint_tests.dir/aslr_test.cpp.o.d"
  "/root/repo/tests/asm_test.cpp" "tests/CMakeFiles/ptaint_tests.dir/asm_test.cpp.o" "gcc" "tests/CMakeFiles/ptaint_tests.dir/asm_test.cpp.o.d"
  "/root/repo/tests/attack_test.cpp" "tests/CMakeFiles/ptaint_tests.dir/attack_test.cpp.o" "gcc" "tests/CMakeFiles/ptaint_tests.dir/attack_test.cpp.o.d"
  "/root/repo/tests/coverage_test.cpp" "tests/CMakeFiles/ptaint_tests.dir/coverage_test.cpp.o" "gcc" "tests/CMakeFiles/ptaint_tests.dir/coverage_test.cpp.o.d"
  "/root/repo/tests/cpu_edge_test.cpp" "tests/CMakeFiles/ptaint_tests.dir/cpu_edge_test.cpp.o" "gcc" "tests/CMakeFiles/ptaint_tests.dir/cpu_edge_test.cpp.o.d"
  "/root/repo/tests/cpu_test.cpp" "tests/CMakeFiles/ptaint_tests.dir/cpu_test.cpp.o" "gcc" "tests/CMakeFiles/ptaint_tests.dir/cpu_test.cpp.o.d"
  "/root/repo/tests/guest_runtime_test.cpp" "tests/CMakeFiles/ptaint_tests.dir/guest_runtime_test.cpp.o" "gcc" "tests/CMakeFiles/ptaint_tests.dir/guest_runtime_test.cpp.o.d"
  "/root/repo/tests/hardened_heap_test.cpp" "tests/CMakeFiles/ptaint_tests.dir/hardened_heap_test.cpp.o" "gcc" "tests/CMakeFiles/ptaint_tests.dir/hardened_heap_test.cpp.o.d"
  "/root/repo/tests/isa_test.cpp" "tests/CMakeFiles/ptaint_tests.dir/isa_test.cpp.o" "gcc" "tests/CMakeFiles/ptaint_tests.dir/isa_test.cpp.o.d"
  "/root/repo/tests/machine_test.cpp" "tests/CMakeFiles/ptaint_tests.dir/machine_test.cpp.o" "gcc" "tests/CMakeFiles/ptaint_tests.dir/machine_test.cpp.o.d"
  "/root/repo/tests/mem_property_test.cpp" "tests/CMakeFiles/ptaint_tests.dir/mem_property_test.cpp.o" "gcc" "tests/CMakeFiles/ptaint_tests.dir/mem_property_test.cpp.o.d"
  "/root/repo/tests/mem_test.cpp" "tests/CMakeFiles/ptaint_tests.dir/mem_test.cpp.o" "gcc" "tests/CMakeFiles/ptaint_tests.dir/mem_test.cpp.o.d"
  "/root/repo/tests/nx_test.cpp" "tests/CMakeFiles/ptaint_tests.dir/nx_test.cpp.o" "gcc" "tests/CMakeFiles/ptaint_tests.dir/nx_test.cpp.o.d"
  "/root/repo/tests/os_edge_test.cpp" "tests/CMakeFiles/ptaint_tests.dir/os_edge_test.cpp.o" "gcc" "tests/CMakeFiles/ptaint_tests.dir/os_edge_test.cpp.o.d"
  "/root/repo/tests/os_test.cpp" "tests/CMakeFiles/ptaint_tests.dir/os_test.cpp.o" "gcc" "tests/CMakeFiles/ptaint_tests.dir/os_test.cpp.o.d"
  "/root/repo/tests/pipeline_test.cpp" "tests/CMakeFiles/ptaint_tests.dir/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/ptaint_tests.dir/pipeline_test.cpp.o.d"
  "/root/repo/tests/profiler_test.cpp" "tests/CMakeFiles/ptaint_tests.dir/profiler_test.cpp.o" "gcc" "tests/CMakeFiles/ptaint_tests.dir/profiler_test.cpp.o.d"
  "/root/repo/tests/roundtrip_test.cpp" "tests/CMakeFiles/ptaint_tests.dir/roundtrip_test.cpp.o" "gcc" "tests/CMakeFiles/ptaint_tests.dir/roundtrip_test.cpp.o.d"
  "/root/repo/tests/spec_test.cpp" "tests/CMakeFiles/ptaint_tests.dir/spec_test.cpp.o" "gcc" "tests/CMakeFiles/ptaint_tests.dir/spec_test.cpp.o.d"
  "/root/repo/tests/taint_primitive_test.cpp" "tests/CMakeFiles/ptaint_tests.dir/taint_primitive_test.cpp.o" "gcc" "tests/CMakeFiles/ptaint_tests.dir/taint_primitive_test.cpp.o.d"
  "/root/repo/tests/taint_unit_test.cpp" "tests/CMakeFiles/ptaint_tests.dir/taint_unit_test.cpp.o" "gcc" "tests/CMakeFiles/ptaint_tests.dir/taint_unit_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ptaint.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
